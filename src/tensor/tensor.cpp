#include "sgnn/tensor/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "sgnn/util/error.hpp"

namespace sgnn {

namespace autograd {
namespace {
thread_local bool t_grad_enabled = true;
// Alive across all threads: serve workers forward concurrently, and the
// zero-tape pin must see every node regardless of which thread made it.
std::atomic<std::int64_t> g_live_nodes{0};
// Installed leaf-grad observer and the backward() nesting depth on this
// thread; only the outermost pass (depth 1) fires the hook — see the
// LeafGradHook contract in tensor.hpp.
thread_local LeafGradHook t_leaf_grad_hook;
thread_local int t_backward_depth = 0;
}  // namespace

bool grad_enabled() { return t_grad_enabled; }

std::int64_t live_node_count() {
  return g_live_nodes.load(std::memory_order_relaxed);
}

Node::Node() { g_live_nodes.fetch_add(1, std::memory_order_relaxed); }
Node::~Node() { g_live_nodes.fetch_sub(1, std::memory_order_relaxed); }

ScopedLeafGradHook::ScopedLeafGradHook(LeafGradHook hook)
    : previous_(std::move(t_leaf_grad_hook)) {
  t_leaf_grad_hook = std::move(hook);
}
ScopedLeafGradHook::~ScopedLeafGradHook() {
  t_leaf_grad_hook = std::move(previous_);
}

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

EnableGradGuard::EnableGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = true;
}
EnableGradGuard::~EnableGradGuard() { t_grad_enabled = previous_; }

}  // namespace autograd

namespace detail {

Storage::Storage(std::size_t count)
    : buffer_(count, real{0}), category_(MemoryTracker::current_category()) {
  MemoryTracker::instance().on_alloc(count * sizeof(real), category_);
}

Storage::~Storage() {
  MemoryTracker::instance().on_free(buffer_.size() * sizeof(real), category_);
}

}  // namespace detail

namespace {

std::shared_ptr<detail::TensorImpl> make_impl(const Shape& shape) {
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = shape;
  impl->storage = std::make_shared<detail::Storage>(
      static_cast<std::size_t>(shape.numel()));
  return impl;
}

}  // namespace

Tensor Tensor::make_result(
    const Shape& shape, std::vector<Tensor> inputs,
    std::function<std::vector<Tensor>(const Tensor&)> backward_fn,
    std::string op_name) {
  auto impl = make_impl(shape);
  bool needs_grad = false;
  if (autograd::grad_enabled()) {
    for (const auto& input : inputs) {
      if (input.defined() && input.requires_grad()) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    impl->requires_grad = true;
    auto node = std::make_shared<autograd::Node>();
    node->op_name = std::move(op_name);
    node->inputs = std::move(inputs);
    node->backward = std::move(backward_fn);
    impl->grad_fn = std::move(node);
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::zeros(const Shape& shape) {
  return Tensor(make_impl(shape));
}

Tensor Tensor::ones(const Shape& shape) { return full(shape, real{1}); }

Tensor Tensor::full(const Shape& shape, real value) {
  auto impl = make_impl(shape);
  std::fill_n(impl->storage->data(), impl->shape.numel(), value);
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(real value) { return full(Shape{}, value); }

Tensor Tensor::from_vector(const std::vector<real>& values,
                           const Shape& shape) {
  SGNN_CHECK(static_cast<std::int64_t>(values.size()) == shape.numel(),
             "from_vector: " << values.size() << " values for shape "
                             << shape.to_string());
  auto impl = make_impl(shape);
  std::copy(values.begin(), values.end(), impl->storage->data());
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, real stddev) {
  auto impl = make_impl(shape);
  real* p = impl->storage->data();
  const std::int64_t n = shape.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = stddev * static_cast<real>(rng.normal());
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::uniform(const Shape& shape, Rng& rng, real lo, real hi) {
  auto impl = make_impl(shape);
  real* p = impl->storage->data();
  const std::int64_t n = shape.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<real>(rng.uniform(lo, hi));
  }
  return Tensor(std::move(impl));
}

const Shape& Tensor::shape() const {
  SGNN_CHECK(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

real* Tensor::data() {
  SGNN_CHECK(defined(), "data() on undefined tensor");
  return impl_->storage->data();
}

const real* Tensor::data() const {
  SGNN_CHECK(defined(), "data() on undefined tensor");
  return impl_->storage->data();
}

std::vector<real> Tensor::to_vector() const {
  const real* p = data();
  return std::vector<real>(p, p + numel());
}

std::string Tensor::to_string(std::int64_t max_elements) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << shape().to_string() << " {";
  const real* p = data();
  const std::int64_t n = numel();
  const std::int64_t shown = std::min(n, max_elements);
  // Row-major with '{' / '}' at dimension boundaries (rank <= 2 nests,
  // higher ranks print flat for brevity).
  const bool nest = rank() == 2;
  const std::int64_t cols = nest ? dim(1) : n;
  for (std::int64_t i = 0; i < shown; ++i) {
    if (nest && cols > 0 && i % cols == 0) os << (i == 0 ? "{" : ", {");
    else if (i > 0) os << ", ";
    os << p[i];
    if (nest && cols > 0 && (i % cols == cols - 1 || i == shown - 1)) {
      os << "}";
    }
  }
  if (shown < n) os << ", ... (" << n - shown << " more)";
  os << "}";
  return os.str();
}

real Tensor::item() const {
  SGNN_CHECK(numel() == 1, "item() on tensor with " << numel() << " elements");
  return data()[0];
}

real Tensor::at(std::int64_t row, std::int64_t col) const {
  SGNN_CHECK(rank() == 2, "at(row, col) requires rank-2, got rank " << rank());
  SGNN_CHECK(row >= 0 && row < dim(0) && col >= 0 && col < dim(1),
             "at(" << row << ", " << col << ") out of bounds for "
                   << shape().to_string());
  return data()[row * dim(1) + col];
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  SGNN_CHECK(defined(), "set_requires_grad on undefined tensor");
  SGNN_CHECK(!value || impl_->grad_fn == nullptr,
             "set_requires_grad(true) is only valid on leaf tensors");
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::is_leaf() const {
  return defined() && impl_->grad_fn == nullptr;
}

Tensor Tensor::grad() const {
  SGNN_CHECK(defined(), "grad() on undefined tensor");
  return impl_->grad ? Tensor(impl_->grad) : Tensor();
}

void Tensor::zero_grad() {
  SGNN_CHECK(defined(), "zero_grad() on undefined tensor");
  impl_->grad.reset();
}

Tensor Tensor::detach() const {
  SGNN_CHECK(defined(), "detach() on undefined tensor");
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = impl_->shape;
  impl->storage = impl_->storage;  // aliases the data
  return Tensor(std::move(impl));
}

Tensor Tensor::clone() const {
  SGNN_CHECK(defined(), "clone() on undefined tensor");
  auto impl = make_impl(impl_->shape);
  std::copy_n(impl_->storage->data(),
              static_cast<std::size_t>(impl_->shape.numel()),
              impl->storage->data());
  return Tensor(std::move(impl));
}

void Tensor::backward(const Tensor& grad_output) {
  SGNN_CHECK(defined(), "backward() on undefined tensor");
  SGNN_CHECK(requires_grad(),
             "backward() on a tensor that does not require grad");
  SGNN_CHECK(!impl_->graph_consumed,
             "backward() called twice: the graph was already consumed");

  // Gradients produced during backward are accounted as gradient memory.
  const ScopedMemCategory grad_scope(MemCategory::kGradient);

  // Nesting depth distinguishes the outermost pass (whose leaf gradients
  // are final, and may be observed by the leaf-grad hook) from nested
  // passes run by checkpoint recomputation (whose are not).
  struct DepthGuard {
    DepthGuard() { ++autograd::t_backward_depth; }
    ~DepthGuard() { --autograd::t_backward_depth; }
  };
  const DepthGuard depth_guard;

  Tensor seed = grad_output;
  if (!seed.defined()) {
    SGNN_CHECK(numel() == 1,
               "backward() without grad_output requires a scalar output");
    seed = Tensor::ones(shape());
  }
  SGNN_CHECK(seed.shape() == shape(),
             "grad_output shape " << seed.shape().to_string()
                                  << " != output shape "
                                  << shape().to_string());

  // Topological order over impls reachable through grad_fn edges.
  std::vector<detail::TensorImpl*> topo;
  std::unordered_set<detail::TensorImpl*> visited;
  // Keep shared ownership of visited impls so raw keys stay valid even if
  // nodes release their inputs mid-walk.
  std::vector<std::shared_ptr<detail::TensorImpl>> retained;
  {
    // Iterative post-order DFS (graphs can be thousands of ops deep).
    struct Frame {
      std::shared_ptr<detail::TensorImpl> impl;
      std::size_t next_input = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({impl_, 0});
    visited.insert(impl_.get());
    retained.push_back(impl_);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& node = frame.impl->grad_fn;
      if (node && frame.next_input < node->inputs.size()) {
        const auto& input = node->inputs[frame.next_input++];
        if (input.defined() && input.requires_grad() &&
            !visited.count(input.impl().get())) {
          visited.insert(input.impl().get());
          retained.push_back(input.impl());
          stack.push_back({input.impl(), 0});
        }
      } else {
        topo.push_back(frame.impl.get());
        stack.pop_back();
      }
    }
  }

  std::unordered_map<detail::TensorImpl*, Tensor> grads;
  grads.emplace(impl_.get(), seed);

  const auto accumulate = [&grads](detail::TensorImpl* key,
                                   const Tensor& grad) {
    auto it = grads.find(key);
    if (it == grads.end()) {
      grads.emplace(key, grad);
      return;
    }
    // Out-of-place accumulation: backward functions may hand the *same*
    // buffer to several inputs (add returns grad_output twice), so mutating
    // either operand in place would corrupt a sibling's pending gradient.
    const Tensor& acc = it->second;
    SGNN_CHECK(acc.shape() == grad.shape(), "gradient shape mismatch during "
                                            "accumulation");
    Tensor sum = Tensor::zeros(acc.shape());
    real* s = sum.data();
    const real* a = acc.data();
    const real* g = grad.data();
    const std::int64_t n = acc.numel();
    for (std::int64_t i = 0; i < n; ++i) s[i] = a[i] + g[i];
    it->second = sum;
  };

  // Reverse-topological sweep: every consumer of a tensor appears after it
  // in `topo`, so by the time we reach an impl its gradient is complete.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    detail::TensorImpl* impl = *it;
    const auto grad_it = grads.find(impl);
    if (grad_it == grads.end()) continue;  // branch never contributed
    const Tensor grad = grad_it->second;

    if (!impl->grad_fn) {
      if (impl->requires_grad) {
        // Leaf: accumulate into the persistent .grad buffer.
        if (!impl->grad) {
          impl->grad = Tensor::zeros(impl->shape).impl();
        }
        real* g = impl->grad->storage->data();
        const real* src = grad.data();
        const std::int64_t n = impl->shape.numel();
        for (std::int64_t i = 0; i < n; ++i) g[i] += src[i];
        // Reverse-topo guarantees every consumer already ran, so this
        // leaf's gradient is final — in the OUTERMOST pass only (a nested
        // checkpoint-recompute pass may be one of several contributions).
        if (autograd::t_backward_depth == 1 && autograd::t_leaf_grad_hook) {
          autograd::t_leaf_grad_hook(impl);
        }
      }
      grads.erase(grad_it);
      continue;
    }

    auto node = impl->grad_fn;
    {
      // Backward bodies must not re-record the graph.
      const autograd::NoGradGuard no_grad;
      const std::vector<Tensor> input_grads = node->backward(grad);
      SGNN_CHECK(input_grads.size() == node->inputs.size(),
                 "op '" << node->op_name << "' returned "
                        << input_grads.size() << " grads for "
                        << node->inputs.size() << " inputs");
      for (std::size_t i = 0; i < node->inputs.size(); ++i) {
        const Tensor& input = node->inputs[i];
        if (!input.defined() || !input.requires_grad()) continue;
        SGNN_CHECK(input_grads[i].defined(),
                   "op '" << node->op_name << "' produced no grad for input "
                          << i << " which requires grad");
        SGNN_CHECK(input_grads[i].shape() == input.shape(),
                   "op '" << node->op_name << "' grad " << i << " shape "
                          << input_grads[i].shape().to_string()
                          << " != input shape "
                          << input.shape().to_string());
        accumulate(input.impl().get(), input_grads[i]);
      }
    }
    // Consume the graph: releasing inputs here frees the forward activations
    // node by node, reproducing the decaying-memory profile of backward.
    node->inputs.clear();
    node->backward = nullptr;
    impl->grad_fn.reset();
    impl->graph_consumed = true;
    grads.erase(grad_it);
  }
}

}  // namespace sgnn
