#include "sgnn/store/bp_file.hpp"

#include <cstring>
#include <sstream>
#include <type_traits>

#include "sgnn/store/serialize.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

constexpr char kMagic[4] = {'S', 'G', 'B', 'P'};
constexpr std::uint32_t kVersion = 2;

// memcpy through a char buffer instead of reinterpret_cast on &value: the
// byte layout (and thus the on-disk format) is identical, but no pointer of
// the wrong type is ever formed.
template <typename T>
void write_raw(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.write(bytes, sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  in.read(bytes, sizeof(T));
  SGNN_CHECK(in.good(), "truncated bp file");
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

}  // namespace

BpWriter::BpWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  SGNN_CHECK(out_.is_open(), "cannot open '" << path << "' for writing");
  out_.write(kMagic, 4);
  write_raw(out_, kVersion);
  SGNN_CHECK(out_.good(), "write failure on bp header");
}

BpWriter::~BpWriter() {
  // Intentionally no auto-finalize: an unexpected destruction (exception
  // unwind) must leave a detectably-incomplete file, not a silently valid
  // one with fewer records than the producer intended.
}

std::size_t BpWriter::append(const MolecularGraph& graph) {
  SGNN_CHECK(!finalized_, "append after finalize");
  std::ostringstream record;
  write_graph_record(record, graph);
  const std::string payload = record.str();
  const auto offset = static_cast<std::uint64_t>(out_.tellp());
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  SGNN_CHECK(out_.good(), "write failure on bp record");
  offsets_.emplace_back(offset, payload.size());
  return offsets_.size() - 1;
}

std::uint64_t BpWriter::payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [offset, size] : offsets_) total += size;
  return total;
}

void BpWriter::finalize() {
  SGNN_CHECK(!finalized_, "finalize called twice");
  finalized_ = true;

  std::ostringstream footer;
  write_raw(footer, static_cast<std::uint64_t>(offsets_.size()));
  for (const auto& [offset, size] : offsets_) {
    write_raw(footer, offset);
    write_raw(footer, size);
  }
  const std::string index_bytes = footer.str();
  const std::uint32_t crc = crc32(index_bytes.data(), index_bytes.size());

  out_.write(index_bytes.data(),
             static_cast<std::streamsize>(index_bytes.size()));
  write_raw(out_, crc);
  write_raw(out_, static_cast<std::uint64_t>(index_bytes.size()));
  out_.write(kMagic, 4);
  out_.close();
  SGNN_CHECK(out_.good(), "write failure on bp footer");
}

BpReader::BpReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  SGNN_CHECK(in_.is_open(), "cannot open '" << path << "' for reading");

  char magic[4];
  in_.read(magic, 4);
  SGNN_CHECK(in_.good() && std::equal(magic, magic + 4, kMagic),
             "'" << path << "' is not a bp file (bad magic)");
  const auto version = read_raw<std::uint32_t>(in_);
  SGNN_CHECK(version == kVersion,
             "'" << path << "' has unsupported bp version " << version);

  // Trailer: ... crc(u32) footer_size(u64) magic(4).
  in_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in_.tellg());
  constexpr std::uint64_t kTrailer = 4 + 8 + 4;
  SGNN_CHECK(file_size >= 8 + kTrailer,
             "'" << path << "' too small to hold a bp footer");
  in_.seekg(static_cast<std::streamoff>(file_size - 12));
  const auto footer_size = read_raw<std::uint64_t>(in_);
  char tail_magic[4];
  in_.read(tail_magic, 4);
  SGNN_CHECK(in_.good() && std::equal(tail_magic, tail_magic + 4, kMagic),
             "'" << path
                 << "' missing bp footer (file truncated or not finalized)");
  SGNN_CHECK(footer_size + kTrailer + 8 <= file_size,
             "'" << path << "' footer size " << footer_size
                 << " inconsistent with file size " << file_size);

  // Read and verify the index.
  in_.seekg(static_cast<std::streamoff>(file_size - kTrailer - footer_size));
  std::string index_bytes(footer_size, '\0');
  in_.read(index_bytes.data(), static_cast<std::streamsize>(footer_size));
  const auto stored_crc = read_raw<std::uint32_t>(in_);
  SGNN_CHECK(crc32(index_bytes.data(), index_bytes.size()) == stored_crc,
             "'" << path << "' footer CRC mismatch (corrupt index)");

  std::istringstream index_stream(index_bytes);
  const auto count = read_raw<std::uint64_t>(index_stream);
  SGNN_CHECK(footer_size == 8 + count * 16,
             "'" << path << "' footer length disagrees with record count");
  index_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto offset = read_raw<std::uint64_t>(index_stream);
    const auto size = read_raw<std::uint64_t>(index_stream);
    SGNN_CHECK(offset >= 8 && offset + size <= file_size,
               "'" << path << "' record " << i << " out of bounds");
    index_.emplace_back(offset, size);
  }
}

MolecularGraph BpReader::read(std::size_t record) const {
  SGNN_CHECK(record < index_.size(), "record " << record << " out of range ("
                                               << index_.size()
                                               << " records)");
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(index_[record].first));
  return read_graph_record(in_);
}

std::uint64_t BpReader::record_bytes(std::size_t record) const {
  SGNN_CHECK(record < index_.size(), "record " << record << " out of range");
  return index_[record].second;
}

}  // namespace sgnn
