#include "sgnn/store/ddstore.hpp"

#include "sgnn/util/error.hpp"

namespace sgnn {

DDStore::DDStore(int num_ranks) : num_ranks_(num_ranks) {
  SGNN_CHECK(num_ranks > 0, "DDStore needs at least one rank");
  shards_.resize(static_cast<std::size_t>(num_ranks));
}

void DDStore::insert(std::vector<MolecularGraph> graphs) {
  for (auto& g : graphs) {
    const auto rank = static_cast<std::size_t>(total_ % num_ranks_);
    shards_[rank].push_back(std::move(g));
    ++total_;
  }
}

int DDStore::owner_rank(std::int64_t index) const {
  SGNN_CHECK(index >= 0 && index < total_,
             "DDStore index " << index << " out of range [0, " << total_
                              << ")");
  return static_cast<int>(index % num_ranks_);
}

const MolecularGraph& DDStore::fetch(int requesting_rank,
                                     std::int64_t index) const {
  SGNN_CHECK(requesting_rank >= 0 && requesting_rank < num_ranks_,
             "invalid requesting rank " << requesting_rank);
  const int owner = owner_rank(index);
  const auto& graph = shards_[static_cast<std::size_t>(owner)]
                             [static_cast<std::size_t>(index / num_ranks_)];
  if (owner == requesting_rank) {
    local_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    remote_fetches_.fetch_add(1, std::memory_order_relaxed);
    remote_bytes_.fetch_add(graph.serialized_bytes(),
                            std::memory_order_relaxed);
  }
  return graph;
}

DDStore::TrafficStats DDStore::stats() const {
  return {local_hits_.load(), remote_fetches_.load(), remote_bytes_.load()};
}

void DDStore::reset_stats() {
  local_hits_ = 0;
  remote_fetches_ = 0;
  remote_bytes_ = 0;
}

std::int64_t DDStore::shard_size(int rank) const {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  return static_cast<std::int64_t>(
      shards_[static_cast<std::size_t>(rank)].size());
}

}  // namespace sgnn
