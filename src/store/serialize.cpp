#include "sgnn/store/serialize.hpp"

#include <array>
#include <cstring>
#include <type_traits>

#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

// memcpy through a char buffer instead of reinterpret_cast on &value: the
// byte layout (and thus the on-disk format) is identical, but no pointer of
// the wrong type is ever formed.
template <typename T>
void write_raw(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.write(bytes, sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  in.read(bytes, sizeof(T));
  SGNN_CHECK(in.good(), "truncated graph record");
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

void write_vec3(std::ostream& out, const Vec3& v) {
  write_raw(out, v.x);
  write_raw(out, v.y);
  write_raw(out, v.z);
}

Vec3 read_vec3(std::istream& in) {
  Vec3 v;
  v.x = read_raw<double>(in);
  v.y = read_raw<double>(in);
  v.z = read_raw<double>(in);
  return v;
}

}  // namespace

void write_graph_record(std::ostream& out, const MolecularGraph& graph) {
  graph.validate();
  const auto n = static_cast<std::uint64_t>(graph.num_nodes());
  const auto e = static_cast<std::uint64_t>(graph.num_edges());
  write_raw(out, n);
  write_raw(out, e);
  write_raw(out, graph.energy);
  write_raw(out, graph.dipole);
  write_vec3(out, graph.structure.cell);
  write_raw(out, static_cast<std::uint8_t>(graph.structure.periodic ? 1 : 0));
  for (const auto z : graph.structure.species) {
    write_raw(out, static_cast<std::int32_t>(z));
  }
  for (const auto& p : graph.structure.positions) write_vec3(out, p);
  for (const auto& f : graph.forces) write_vec3(out, f);
  for (std::size_t k = 0; k < graph.edges.src.size(); ++k) {
    write_raw(out, graph.edges.src[k]);
    write_raw(out, graph.edges.dst[k]);
  }
  for (const auto& d : graph.edges.displacement) write_vec3(out, d);
  SGNN_CHECK(out.good(), "write failure while serializing graph");
}

MolecularGraph read_graph_record(std::istream& in) {
  MolecularGraph graph;
  const auto n = read_raw<std::uint64_t>(in);
  const auto e = read_raw<std::uint64_t>(in);
  // Sanity bounds protect against reading garbage as a huge allocation.
  SGNN_CHECK(n < (1ULL << 32) && e < (1ULL << 36),
             "implausible graph record header (n=" << n << ", e=" << e << ")");
  graph.energy = read_raw<double>(in);
  graph.dipole = read_raw<double>(in);
  graph.structure.cell = read_vec3(in);
  graph.structure.periodic = read_raw<std::uint8_t>(in) != 0;
  graph.structure.species.resize(n);
  for (auto& z : graph.structure.species) z = read_raw<std::int32_t>(in);
  graph.structure.positions.resize(n);
  for (auto& p : graph.structure.positions) p = read_vec3(in);
  graph.forces.resize(n);
  for (auto& f : graph.forces) f = read_vec3(in);
  graph.edges.src.resize(e);
  graph.edges.dst.resize(e);
  for (std::size_t k = 0; k < e; ++k) {
    graph.edges.src[k] = read_raw<std::int64_t>(in);
    graph.edges.dst[k] = read_raw<std::int64_t>(in);
  }
  graph.edges.displacement.resize(e);
  for (auto& d : graph.edges.displacement) d = read_vec3(in);
  graph.validate();
  return graph;
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sgnn
