#include "sgnn/obs/telemetry.hpp"

#include "sgnn/obs/metrics.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/parse.hpp"

namespace sgnn::obs {

namespace {

std::string format_double(double value) { return util::format_double(value); }

/// Extracts the numeric value of `"key":<number>` from a flat JSON line.
/// Locale-independent: the telemetry format always uses '.' decimals.
double numeric_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto at = line.find(needle);
  SGNN_CHECK(at != std::string::npos,
             "telemetry line is missing field '" << key << "': " << line);
  const char* start = line.c_str() + at + needle.size();
  const char* last = line.c_str() + line.size();
  double value = 0;
  SGNN_CHECK(util::parse_double(start, last, value),
             "telemetry field '" << key << "' is not numeric");
  return value;
}

/// Extracts the value of `"key":"<string>"` from a flat JSON line; returns
/// an empty string when the field is absent (older logs predate it). The
/// emitted strings are plain identifiers, so no unescaping is needed.
std::string string_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return {};
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  SGNN_CHECK(end != std::string::npos,
             "telemetry field '" << key << "' has an unterminated string");
  return line.substr(start, end - start);
}

/// Like numeric_field but returns 0 when the field is absent — for fields
/// added after logs already existed (the halo_* graph-parallel group).
double optional_numeric_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  if (line.find(needle) == std::string::npos) return 0;
  return numeric_field(line, key);
}

}  // namespace

std::string StepTelemetry::to_json() const {
  std::string out = "{";
  out += "\"step\":" + std::to_string(step);
  out += ",\"epoch\":" + std::to_string(epoch);
  out += ",\"rank\":" + std::to_string(rank);
  out += ",\"loss\":" + format_double(loss);
  out += ",\"grad_norm\":" + format_double(grad_norm);
  out += ",\"learning_rate\":" + format_double(learning_rate);
  out += ",\"batch_graphs\":" + std::to_string(batch_graphs);
  out += ",\"batch_atoms\":" + std::to_string(batch_atoms);
  out += ",\"batch_edges\":" + std::to_string(batch_edges);
  out += ",\"step_seconds\":" + format_double(step_seconds);
  out += ",\"atoms_per_sec\":" + format_double(atoms_per_sec);
  out += ",\"graphs_per_sec\":" + format_double(graphs_per_sec);
  out += ",\"collective_bytes\":" + std::to_string(collective_bytes);
  out += ",\"comm_seconds_modeled\":" + format_double(comm_seconds_modeled);
  out += ",\"comm_exposed_seconds\":" + format_double(comm_exposed_seconds);
  out += ",\"comm_overlapped_seconds\":" +
         format_double(comm_overlapped_seconds);
  out += ",\"comm_buckets\":" + std::to_string(comm_buckets);
  out += ",\"halo_bytes\":" + std::to_string(halo_bytes);
  out += ",\"halo_exchanges\":" + std::to_string(halo_exchanges);
  out += ",\"halo_exposed_seconds\":" + format_double(halo_exposed_seconds);
  out += ",\"halo_overlapped_seconds\":" +
         format_double(halo_overlapped_seconds);
  out += ",\"live_bytes\":" + std::to_string(live_bytes);
  out += ",\"peak_bytes\":" + std::to_string(peak_bytes);
  out += ",\"kernel_seconds\":" + format_double(kernel_seconds);
  out += ",\"kernel_flops\":" + std::to_string(kernel_flops);
  out += ",\"kernel_bytes\":" + std::to_string(kernel_bytes);
  out += ",\"kernel_backend\":\"" + kernel_backend + "\"";
  out += ",\"compute_dtype\":\"" + compute_dtype + "\"";
  out += "}";
  return out;
}

StepTelemetry StepTelemetry::from_json(const std::string& line) {
  StepTelemetry t;
  t.step = static_cast<std::int64_t>(numeric_field(line, "step"));
  t.epoch = static_cast<std::int64_t>(numeric_field(line, "epoch"));
  t.rank = static_cast<int>(numeric_field(line, "rank"));
  t.loss = numeric_field(line, "loss");
  t.grad_norm = numeric_field(line, "grad_norm");
  t.learning_rate = numeric_field(line, "learning_rate");
  t.batch_graphs =
      static_cast<std::int64_t>(numeric_field(line, "batch_graphs"));
  t.batch_atoms =
      static_cast<std::int64_t>(numeric_field(line, "batch_atoms"));
  t.batch_edges =
      static_cast<std::int64_t>(numeric_field(line, "batch_edges"));
  t.step_seconds = numeric_field(line, "step_seconds");
  t.atoms_per_sec = numeric_field(line, "atoms_per_sec");
  t.graphs_per_sec = numeric_field(line, "graphs_per_sec");
  t.collective_bytes =
      static_cast<std::uint64_t>(numeric_field(line, "collective_bytes"));
  t.comm_seconds_modeled = numeric_field(line, "comm_seconds_modeled");
  t.comm_exposed_seconds = numeric_field(line, "comm_exposed_seconds");
  t.comm_overlapped_seconds = numeric_field(line, "comm_overlapped_seconds");
  t.comm_buckets = static_cast<std::int64_t>(numeric_field(line, "comm_buckets"));
  // Lenient: logs written before graph parallelism carry no halo fields;
  // they read back as zero (same convention as the backend strings below).
  t.halo_bytes =
      static_cast<std::uint64_t>(optional_numeric_field(line, "halo_bytes"));
  t.halo_exchanges = static_cast<std::int64_t>(
      optional_numeric_field(line, "halo_exchanges"));
  t.halo_exposed_seconds = optional_numeric_field(line, "halo_exposed_seconds");
  t.halo_overlapped_seconds =
      optional_numeric_field(line, "halo_overlapped_seconds");
  t.live_bytes = static_cast<std::int64_t>(numeric_field(line, "live_bytes"));
  t.peak_bytes = static_cast<std::int64_t>(numeric_field(line, "peak_bytes"));
  t.kernel_seconds = numeric_field(line, "kernel_seconds");
  t.kernel_flops =
      static_cast<std::int64_t>(numeric_field(line, "kernel_flops"));
  t.kernel_bytes =
      static_cast<std::int64_t>(numeric_field(line, "kernel_bytes"));
  // Lenient: logs written before the kernel backend layer existed do not
  // carry these fields; they read back as "".
  t.kernel_backend = string_field(line, "kernel_backend");
  t.compute_dtype = string_field(line, "compute_dtype");
  return t;
}

std::vector<StepTelemetry> read_jsonl(std::istream& in) {
  std::vector<StepTelemetry> steps;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      steps.push_back(StepTelemetry::from_json(line));
    } catch (const Error& e) {
      // Re-throw with the position attached — a sweep reading thousands of
      // lines needs to know *which* record is corrupt.
      SGNN_CHECK(false, "telemetry JSONL parse error at line " << line_no
                                                               << ": "
                                                               << e.what());
    }
  }
  return steps;
}

std::vector<StepTelemetry> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  SGNN_CHECK(in.good(), "cannot open telemetry file " << path);
  try {
    return read_jsonl(in);
  } catch (const Error& e) {
    SGNN_CHECK(false, "in " << path << ": " << e.what());
  }
}

JsonlTelemetrySink::JsonlTelemetrySink(const std::string& path)
    : file_(path, std::ios::trunc), out_(&file_) {
  SGNN_CHECK(file_.good(), "cannot open telemetry output file " << path);
}

JsonlTelemetrySink::JsonlTelemetrySink(std::ostream& out) : out_(&out) {}

void JsonlTelemetrySink::on_step(const StepTelemetry& step) {
  const std::string line = step.to_json();
  const std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  ++lines_;
}

std::int64_t JsonlTelemetrySink::lines_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void RecordingTelemetrySink::on_step(const StepTelemetry& step) {
  const std::lock_guard<std::mutex> lock(mutex_);
  steps_.push_back(step);
}

std::vector<StepTelemetry> RecordingTelemetrySink::steps() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return steps_;
}

void record_step_metrics(const StepTelemetry& step) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("train.steps").add(1);
  registry.counter("train.atoms").add(step.batch_atoms);
  registry.counter("train.graphs").add(step.batch_graphs);
  registry.counter("train.edges").add(step.batch_edges);
  registry.gauge("train.loss").set(step.loss);
  registry.gauge("train.lr").set(step.learning_rate);
  registry.gauge("train.grad_norm").set(step.grad_norm);
  registry.gauge("train.atoms_per_sec").set(step.atoms_per_sec);
  registry.gauge("train.graphs_per_sec").set(step.graphs_per_sec);
  registry.gauge("mem.live_bytes").set(static_cast<double>(step.live_bytes));
  registry.gauge("mem.peak_bytes").set(static_cast<double>(step.peak_bytes));
  registry.histogram("step.seconds").observe(step.step_seconds);
  // Overlap accounting is filled by rank 0 only (zeros elsewhere), so the
  // accumulated gauges track the run-wide exposed/overlapped split.
  registry.gauge("comm.exposed_seconds").add(step.comm_exposed_seconds);
  registry.gauge("comm.overlapped_seconds").add(step.comm_overlapped_seconds);
  registry.counter("comm.buckets").add(step.comm_buckets);
  // Halo fabric-time split (graph-parallel runs; zero elsewhere). The raw
  // halo.bytes / halo.exchanges counters are bumped by the HaloExchanger
  // itself as each collective posts, so they are NOT re-counted here.
  registry.gauge("halo.exposed_seconds").add(step.halo_exposed_seconds);
  registry.gauge("halo.overlapped_seconds").add(step.halo_overlapped_seconds);
  // Kernel profile deltas (zero when the profiler is disabled).
  registry.gauge("kernel.seconds").add(step.kernel_seconds);
  registry.counter("kernel.flops").add(step.kernel_flops);
  registry.counter("kernel.bytes").add(step.kernel_bytes);
}

}  // namespace sgnn::obs
