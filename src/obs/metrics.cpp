#include "sgnn/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <locale>
#include <sstream>

#include "sgnn/util/error.hpp"

namespace sgnn::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

std::string format_double(double value) {
  std::ostringstream os;
  // Classic locale: JSON output must use '.' decimals whatever the process
  // locale says.
  os.imbue(std::locale::classic());
  os << std::setprecision(17) << value;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  SGNN_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  SGNN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bounds must be sorted ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const double min = min_.load(std::memory_order_relaxed);
  const double max = max_.load(std::memory_order_relaxed);
  snap.min = std::isfinite(min) ? min : 0.0;
  snap.max = std::isfinite(max) ? max : 0.0;
  return snap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate within the bucket; edge buckets are clamped by the
      // observed extremes so one-sided ladders still give finite answers.
      const double lower = i == 0 ? min : std::max(min, bounds[i - 1]);
      const double upper = i == bounds.size() ? max : std::min(max, bounds[i]);
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max;
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  double factor) {
  SGNN_CHECK(lo > 0 && hi > lo, "exponential bounds need 0 < lo < hi");
  SGNN_CHECK(factor > 1, "exponential bound factor must exceed 1");
  std::vector<double> bounds;
  for (double b = lo; b < hi * factor; b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::default_seconds_bounds() {
  return exponential_bounds(1e-6, 1e3, 2.0);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_seconds_bounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, h] : histograms) {
    os << name << ": count=" << h.count << " mean=" << h.mean()
       << " p50=" << h.quantile(0.50) << " p95=" << h.quantile(0.95)
       << " p99=" << h.quantile(0.99) << " min=" << h.min << " max=" << h.max
       << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + format_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_double(h.sum) +
           ",\"mean\":" + format_double(h.mean()) +
           ",\"p50\":" + format_double(h.quantile(0.50)) +
           ",\"p95\":" + format_double(h.quantile(0.95)) +
           ",\"p99\":" + format_double(h.quantile(0.99)) +
           ",\"min\":" + format_double(h.min) +
           ",\"max\":" + format_double(h.max) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace sgnn::obs
