#include "sgnn/obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"

namespace sgnn::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

thread_local int t_current_rank = -1;

std::uint32_t assign_tid() {
  static std::atomic<std::uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Rank -1 spans (dataset generation, single-process training) get their own
/// timeline lane instead of colliding with rank 0.
constexpr int kUnrankedPid = 1000;

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable() {
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.clear();
  }
}

std::int64_t TraceRecorder::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceRecorder::current_rank() { return t_current_rank; }

void TraceRecorder::set_current_rank(int rank) { t_current_rank = rank; }

std::uint32_t TraceRecorder::current_tid() {
  thread_local const std::uint32_t tid = assign_tid();
  return tid;
}

void TraceRecorder::record(TraceEvent event) {
  Shard& shard = shards_[event.tid % kShards];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(event));
}

std::size_t TraceRecorder::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> all;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.begin_us < b.begin_us;
            });
  return all;
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> all = events();

  std::string out;
  out.reserve(128 + all.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;

  // Process-name metadata so Perfetto labels each rank's timeline.
  std::vector<int> pids;
  for (const auto& event : all) {
    const int pid = event.rank >= 0 ? event.rank : kUnrankedPid;
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) {
      pids.push_back(pid);
    }
  }
  for (const int pid : pids) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += pid == kUnrankedPid ? std::string("main")
                               : "rank " + std::to_string(pid);
    out += "\"}}";
  }

  for (const auto& event : all) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.category);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(event.begin_us);
    out += ",\"dur\":";
    out += std::to_string(std::max<std::int64_t>(
        std::int64_t{0}, event.end_us - event.begin_us));
    out += ",\"pid\":";
    out += std::to_string(event.rank >= 0 ? event.rank : kUnrankedPid);
    out += ",\"tid\":";
    out += std::to_string(event.tid);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        append_escaped(out, key);
        out += "\":\"";
        append_escaped(out, value);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  SGNN_CHECK(file.good(), "cannot open trace output file " << path);
  file << to_chrome_json() << '\n';
  SGNN_CHECK(file.good(), "failed writing trace to " << path);
}

ScopedTraceRank::ScopedTraceRank(int rank)
    : previous_rank_(TraceRecorder::current_rank()),
      previous_log_rank_(Logger::thread_rank()) {
  TraceRecorder::set_current_rank(rank);
  Logger::set_thread_rank(rank);
}

ScopedTraceRank::~ScopedTraceRank() {
  TraceRecorder::set_current_rank(previous_rank_);
  Logger::set_thread_rank(previous_log_rank_);
}

}  // namespace sgnn::obs
