#include "sgnn/obs/prof.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <locale>
#include <sstream>

#include "sgnn/tensor/kernels.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn::obs::prof {

namespace detail {

std::atomic<bool> g_prof_enabled{false};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Call-tree node. Counters are relaxed atomics written only by the owning
/// thread (uncontended fetch_add) and read by snapshotting threads; the map
/// of children is guarded by the owning ThreadState's mutex so structural
/// growth never races a snapshot walk.
struct Node {
  explicit Node(std::string node_name, Node* node_parent)
      : name(std::move(node_name)), parent(node_parent) {}

  std::string name;
  Node* parent;
  bool kernel = false;
  std::atomic<std::int64_t> calls{0};
  std::atomic<std::int64_t> ns{0};
  std::atomic<std::int64_t> flops{0};
  std::atomic<std::int64_t> bytes{0};
  std::map<std::string, std::unique_ptr<Node>> children;
};

/// One tree per instrumented thread. Rank threads, the main thread, and any
/// bench driver each own one; snapshots merge them by path.
struct ThreadState {
  std::mutex mutex;  ///< guards every children map in this tree
  Node root{"", nullptr};
  Node* current = &root;  ///< owner-thread only
};

namespace {

struct Registry {
  std::mutex mutex;
  /// Owns every state ever created; states outlive their threads so a
  /// report after the rank threads joined still sees their kernels.
  std::vector<std::unique_ptr<ThreadState>> states;
};

Registry& registry() {
  static Registry r;
  return r;
}

ThreadState& thread_state() {
  thread_local ThreadState* state = [] {
    auto owned = std::make_unique<ThreadState>();
    ThreadState* raw = owned.get();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.states.push_back(std::move(owned));
    return raw;
  }();
  return *state;
}

thread_local bool t_suppressed = false;

/// RAII suppression used around calibration.
struct SuppressProfile {
  SuppressProfile() : previous(t_suppressed) { t_suppressed = true; }
  ~SuppressProfile() { t_suppressed = previous; }
  bool previous;
};

void reset_node(Node& node) {
  node.calls.store(0, std::memory_order_relaxed);
  node.ns.store(0, std::memory_order_relaxed);
  node.flops.store(0, std::memory_order_relaxed);
  node.bytes.store(0, std::memory_order_relaxed);
  for (auto& [name, child] : node.children) reset_node(*child);
}

}  // namespace

bool suppressed() { return t_suppressed; }

Node* enter(const char* name, const char* suffix) {
  std::string key(name);
  if (suffix != nullptr) key += suffix;
  ThreadState& state = thread_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.current->children[key];
  if (!slot) slot = std::make_unique<Node>(std::move(key), state.current);
  state.current = slot.get();
  return state.current;
}

void leave(Node* node, std::int64_t begin_ns, std::int64_t flops,
           std::int64_t bytes, bool kernel) {
  const std::int64_t elapsed = now_ns() - begin_ns;
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->ns.fetch_add(elapsed, std::memory_order_relaxed);
  if (kernel) {
    node->kernel = true;
    node->flops.fetch_add(flops, std::memory_order_relaxed);
    node->bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  thread_state().current = node->parent;
}

}  // namespace detail

void enable() {
  detail::g_prof_enabled.store(true, std::memory_order_relaxed);
}

void disable() {
  detail::g_prof_enabled.store(false, std::memory_order_relaxed);
}

void reset() {
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& state : r.states) {
    const std::lock_guard<std::mutex> state_lock(state->mutex);
    detail::reset_node(state->root);
  }
}

namespace {

std::string format_double(double value) {
  std::ostringstream os;
  // Classic locale: JSON output must use '.' decimals whatever the process
  // locale says.
  os.imbue(std::locale::classic());
  os << std::setprecision(17) << value;
  return os.str();
}

double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// Accumulation tree the per-thread trees merge into before reporting.
struct MergedNode {
  std::int64_t calls = 0;
  std::int64_t ns = 0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  bool kernel = false;
  std::map<std::string, MergedNode> children;
};

void merge_into(const detail::Node& source, MergedNode& target) {
  target.calls += source.calls.load(std::memory_order_relaxed);
  target.ns += source.ns.load(std::memory_order_relaxed);
  target.flops += source.flops.load(std::memory_order_relaxed);
  target.bytes += source.bytes.load(std::memory_order_relaxed);
  target.kernel = target.kernel || source.kernel;
  for (const auto& [name, child] : source.children) {
    merge_into(*child, target.children[name]);
  }
}

MergedNode merged_tree() {
  MergedNode root;
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& state : r.states) {
    const std::lock_guard<std::mutex> state_lock(state->mutex);
    merge_into(state->root, root);
  }
  return root;
}

/// reset() zeroes counters but keeps node storage (open regions hold Node*),
/// so the tree can contain dead paths from before the reset; a subtree only
/// shows up in reports if something was recorded in it since.
bool has_counts(const MergedNode& node) {
  if (node.calls > 0 || node.ns > 0) return true;
  for (const auto& [name, child] : node.children) {
    (void)name;
    if (has_counts(child)) return true;
  }
  return false;
}

void flatten(const MergedNode& node, const std::string& path, int depth,
             std::vector<TreeRow>& rows,
             std::map<std::string, KernelRow>& kernels) {
  for (const auto& [name, child] : node.children) {
    if (!has_counts(child)) continue;
    const std::string child_path = path.empty() ? name : path + ";" + name;
    std::int64_t children_ns = 0;
    for (const auto& [grand_name, grand] : child.children) {
      children_ns += grand.ns;
    }
    TreeRow row;
    row.path = child_path;
    row.name = name;
    row.depth = depth;
    row.calls = child.calls;
    row.inclusive_seconds = ns_to_s(child.ns);
    // Children's intervals nest inside the parent's, so the difference is
    // non-negative up to timer granularity; clamp the jitter away.
    row.exclusive_seconds = std::max(0.0, ns_to_s(child.ns - children_ns));
    row.flops = child.flops;
    row.bytes = child.bytes;
    rows.push_back(row);
    if (child.kernel) {
      KernelRow& k = kernels[name];
      k.name = name;
      k.calls += child.calls;
      k.flops += child.flops;
      k.bytes += child.bytes;
      // Kernel invocations are leaves, so inclusive time is kernel time.
      k.seconds += ns_to_s(child.ns);
    }
    flatten(child, child_path, depth + 1, rows, kernels);
  }
}

void finish_kernel_row(KernelRow& k, const Calibration& machine) {
  if (k.seconds > 0) {
    k.gflops = static_cast<double>(k.flops) / k.seconds * 1e-9;
    k.gbps = static_cast<double>(k.bytes) / k.seconds * 1e-9;
  }
  if (k.bytes > 0) {
    k.intensity = static_cast<double>(k.flops) / static_cast<double>(k.bytes);
  }
  if (k.flops == 0) {
    // Pure data movement: the roofline comparison is bandwidth only.
    k.attainable_gflops = 0;
    k.roofline_fraction = machine.peak_gbps > 0 ? k.gbps / machine.peak_gbps
                                                : 0;
    return;
  }
  k.attainable_gflops =
      std::min(machine.peak_gflops, k.intensity * machine.peak_gbps);
  k.roofline_fraction =
      k.attainable_gflops > 0 ? k.gflops / k.attainable_gflops : 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// The calibration kernels mirror micro_tensor's hot loops: an ikj matmul
/// (the compute-bound roof) and a streaming triad (the bandwidth roof),
/// both sharded over the intra-op pool so the peaks match what a kernel can
/// actually reach in this process.
double calibrate_gflops() {
  constexpr std::int64_t n = 160;
  std::vector<double> a(static_cast<std::size_t>(n * n), 1.5);
  std::vector<double> b(static_cast<std::size_t>(n * n), 0.25);
  std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  const std::int64_t begin_ns = detail::now_ns();
  std::int64_t reps = 0;
  // Run whole multiplications until ~25 ms of samples accumulated. Routed
  // through the active kernel backend so the roofline peak reflects what
  // the dispatched matmul can actually reach.
  while (detail::now_ns() - begin_ns < 25'000'000) {
    kernels::matmul(pa, pb, pc, n, n, n);
    ++reps;
  }
  const double seconds = ns_to_s(detail::now_ns() - begin_ns);
  const double flops =
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
      static_cast<double>(n) * static_cast<double>(reps);
  return seconds > 0 ? flops / seconds * 1e-9 : 0;
}

double calibrate_gbps() {
  // 8M doubles per array: well past cache, so the triad streams from memory.
  constexpr std::int64_t n = std::int64_t{1} << 23;
  std::vector<double> a(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n), 2.0);
  std::vector<double> c(static_cast<std::size_t>(n), 0.0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  const std::int64_t begin_ns = detail::now_ns();
  std::int64_t reps = 0;
  while (detail::now_ns() - begin_ns < 25'000'000) {
    parallel_for(0, n, std::int64_t{1} << 18,
                 [=](std::int64_t begin, std::int64_t end) {
                   for (std::int64_t i = begin; i < end; ++i) {
                     pc[i] = pa[i] + 0.5 * pb[i];
                   }
                 });
    ++reps;
  }
  const double seconds = ns_to_s(detail::now_ns() - begin_ns);
  // Two streamed reads plus one write per element.
  const double bytes = 3.0 * static_cast<double>(n) *
                       static_cast<double>(sizeof(double)) *
                       static_cast<double>(reps);
  return seconds > 0 ? bytes / seconds * 1e-9 : 0;
}

Calibration run_calibration() {
  const detail::SuppressProfile guard;
  Calibration machine;
  machine.threads = ThreadPool::instance().size();
  machine.peak_gflops = calibrate_gflops();
  machine.peak_gbps = calibrate_gbps();
  return machine;
}

}  // namespace

const Calibration& calibration() {
  static const Calibration machine = run_calibration();
  return machine;
}

Totals totals() {
  Totals t;
  const MergedNode root = merged_tree();
  std::vector<TreeRow> rows;
  std::map<std::string, KernelRow> kernels;
  flatten(root, "", 0, rows, kernels);
  for (const auto& [name, k] : kernels) {
    t.kernel_calls += k.calls;
    t.flops += k.flops;
    t.bytes += k.bytes;
    t.kernel_seconds += k.seconds;
  }
  return t;
}

double Report::total_seconds() const {
  double total = 0;
  for (const auto& row : tree) {
    if (row.depth == 0) total += row.inclusive_seconds;
  }
  return total;
}

std::vector<TreeRow> Report::hotspots(std::size_t top_n) const {
  std::vector<TreeRow> rows = tree;
  std::sort(rows.begin(), rows.end(), [](const TreeRow& a, const TreeRow& b) {
    if (a.exclusive_seconds != b.exclusive_seconds) {
      return a.exclusive_seconds > b.exclusive_seconds;
    }
    return a.path < b.path;
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

std::string Report::to_text(std::size_t top_n) const {
  std::ostringstream os;
  os << "machine: peak " << std::fixed << std::setprecision(2)
     << machine.peak_gflops << " GFLOP/s, " << machine.peak_gbps
     << " GB/s (" << machine.threads << " pool lanes)\n";
  os << "kernels (by time):\n";
  os << "  " << std::left << std::setw(22) << "name" << std::right
     << std::setw(10) << "calls" << std::setw(12) << "seconds" << std::setw(12)
     << "GFLOP" << std::setw(12) << "GB" << std::setw(10) << "GF/s"
     << std::setw(10) << "GB/s" << std::setw(9) << "FLOP/B" << std::setw(9)
     << "roof%" << "\n";
  for (const auto& k : kernels) {
    os << "  " << std::left << std::setw(22) << k.name << std::right
       << std::setw(10) << k.calls << std::setw(12) << std::scientific
       << std::setprecision(2) << k.seconds << std::setw(12)
       << static_cast<double>(k.flops) * 1e-9 << std::setw(12)
       << static_cast<double>(k.bytes) * 1e-9 << std::fixed << std::setw(10)
       << std::setprecision(2) << k.gflops << std::setw(10) << k.gbps
       << std::setw(9) << k.intensity << std::setw(8) << std::setprecision(1)
       << 100.0 * k.roofline_fraction << "%\n";
  }
  os << "hotspots (by exclusive time):\n";
  for (const auto& row : hotspots(top_n)) {
    os << "  " << std::scientific << std::setprecision(2)
       << row.exclusive_seconds << " s  " << row.path << " (" << row.calls
       << " calls)\n";
  }
  return os.str();
}

std::string Report::to_json() const {
  std::string out = "{\"calibration\":{";
  out += "\"peak_gflops\":" + format_double(machine.peak_gflops);
  out += ",\"peak_gbps\":" + format_double(machine.peak_gbps);
  out += ",\"threads\":" + std::to_string(machine.threads);
  out += "},\"kernels\":[";
  bool first = true;
  for (const auto& k : kernels) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(k.name) + "\"";
    out += ",\"calls\":" + std::to_string(k.calls);
    out += ",\"flops\":" + std::to_string(k.flops);
    out += ",\"bytes\":" + std::to_string(k.bytes);
    out += ",\"seconds\":" + format_double(k.seconds);
    out += ",\"gflops\":" + format_double(k.gflops);
    out += ",\"gbps\":" + format_double(k.gbps);
    out += ",\"intensity\":" + format_double(k.intensity);
    out += ",\"attainable_gflops\":" + format_double(k.attainable_gflops);
    out += ",\"roofline_fraction\":" + format_double(k.roofline_fraction);
    out += "}";
  }
  out += "],\"tree\":[";
  first = true;
  for (const auto& row : tree) {
    if (!first) out += ",";
    first = false;
    out += "{\"path\":\"" + json_escape(row.path) + "\"";
    out += ",\"name\":\"" + json_escape(row.name) + "\"";
    out += ",\"depth\":" + std::to_string(row.depth);
    out += ",\"calls\":" + std::to_string(row.calls);
    out += ",\"inclusive_seconds\":" + format_double(row.inclusive_seconds);
    out += ",\"exclusive_seconds\":" + format_double(row.exclusive_seconds);
    out += ",\"flops\":" + std::to_string(row.flops);
    out += ",\"bytes\":" + std::to_string(row.bytes);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Report::to_collapsed() const {
  std::ostringstream os;
  for (const auto& row : tree) {
    const auto us =
        static_cast<std::int64_t>(row.exclusive_seconds * 1e6 + 0.5);
    if (us <= 0) continue;
    os << row.path << " " << us << "\n";
  }
  return os.str();
}

Report report(bool with_calibration) {
  Report result;
  if (with_calibration) result.machine = calibration();
  const MergedNode root = merged_tree();
  std::map<std::string, KernelRow> kernels;
  flatten(root, "", 0, result.tree, kernels);
  for (auto& [name, k] : kernels) {
    finish_kernel_row(k, result.machine);
    result.kernels.push_back(k);
  }
  std::sort(result.kernels.begin(), result.kernels.end(),
            [](const KernelRow& a, const KernelRow& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.name < b.name;
            });
  return result;
}

}  // namespace sgnn::obs::prof
