#include "sgnn/util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

// sgnn-lint: allow(layering): metrics is the any-layer instrumentation sink;
// the pool reports queue depth/steals as counters and takes nothing back.
#include "sgnn/obs/metrics.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

/// True inside a pool worker; nested parallel_for calls run inline instead
/// of re-entering the queue (a worker blocking on its own pool deadlocks).
thread_local bool t_in_pool_worker = false;

int configured_size() {
  if (const char* env = std::getenv("SGNN_NUM_THREADS")) {
    char* tail = nullptr;
    const long parsed = std::strtol(env, &tail, 10);
    SGNN_CHECK(tail != env && *tail == '\0' && parsed >= 1 && parsed <= 1024,
               "SGNN_NUM_THREADS must be an integer in [1, 1024], got \""
                   << env << "\"");
    return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One parallel_for invocation. Chunks are claimed lock-free via `next`;
/// completion is tracked under `mutex` so finished-output writes
/// happen-before the caller's return (mutex release/acquire pairing).
struct Task {
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t nchunks = 0;
  std::atomic<std::int64_t> next{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::int64_t done = 0;

  /// Claims and runs one chunk. Returns false once all chunks are claimed.
  bool run_one_chunk() {
    const std::int64_t chunk = next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= nchunks) return false;
    const std::int64_t chunk_begin = begin + chunk * grain;
    const std::int64_t chunk_end =
        chunk_begin + grain < end ? chunk_begin + grain : end;
    (*fn)(chunk_begin, chunk_end);
    {
      const std::lock_guard<std::mutex> lock(mutex);
      ++done;
      if (done == nchunks) done_cv.notify_all();
    }
    return true;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<Task>> tasks;
  std::vector<std::thread> workers;
  bool stop = false;

  void worker_loop() {
    t_in_pool_worker = true;
    for (;;) {
      std::shared_ptr<Task> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || !tasks.empty(); });
        if (stop) return;
        task = tasks.front();
      }
      if (!task->run_one_chunk()) {
        // Task exhausted: drop it from the queue if still there, then look
        // for the next one.
        const std::lock_guard<std::mutex> lock(mutex);
        if (!tasks.empty() && tasks.front() == task) tasks.pop_front();
      }
    }
  }
};

ThreadPool::ThreadPool() : impl_(std::make_unique<Impl>()) {
  const int size = configured_size();
  size_ = size < 1 ? 1 : size;
  spawn_workers(size_ - 1);
  obs::MetricsRegistry::instance().gauge("threadpool.size").set(size_);
}

ThreadPool::~ThreadPool() { join_workers(); }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::spawn_workers(int count) {
  impl_->stop = false;
  impl_->workers.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

void ThreadPool::join_workers() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  impl_->workers.clear();
}

void ThreadPool::resize(int num_threads) {
  SGNN_CHECK(num_threads >= 1, "thread pool size must be >= 1, got "
                                   << num_threads);
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    SGNN_CHECK(impl_->tasks.empty(),
               "ThreadPool::resize with tasks in flight");
  }
  join_workers();
  size_ = num_threads;
  spawn_workers(size_ - 1);
  obs::MetricsRegistry::instance().gauge("threadpool.size").set(size_);
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  SGNN_CHECK(grain >= 1, "parallel_for grain must be >= 1, got " << grain);
  const std::int64_t nchunks = parallel_chunk_count(begin, end, grain);
  if (nchunks == 0) return;

  // Inline fast path: single chunk, single lane, or nested call from a
  // worker. Visits the identical chunk decomposition in index order, so the
  // numerics match the pooled path bit-for-bit.
  if (nchunks == 1 || size_ == 1 || t_in_pool_worker) {
    for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
      const std::int64_t chunk_begin = begin + chunk * grain;
      const std::int64_t chunk_end =
          chunk_begin + grain < end ? chunk_begin + grain : end;
      fn(chunk_begin, chunk_end);
    }
    return;
  }

  auto task = std::make_shared<Task>();
  task->fn = &fn;
  task->begin = begin;
  task->end = end;
  task->grain = grain;
  task->nchunks = nchunks;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->tasks.push_back(task);
  }
  impl_->work_cv.notify_all();

  // The caller is a lane too: claim chunks until the task is drained, then
  // wait for chunks still running on workers.
  while (task->run_one_chunk()) {
  }
  {
    std::unique_lock<std::mutex> lock(task->mutex);
    task->done_cv.wait(lock, [&] { return task->done == task->nchunks; });
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->tasks.empty() && impl_->tasks.front() == task) {
      impl_->tasks.pop_front();
    }
  }
}

}  // namespace sgnn
