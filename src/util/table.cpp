#include "sgnn/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <locale>
#include <sstream>

#include "sgnn/util/error.hpp"

namespace sgnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SGNN_CHECK(!headers_.empty(), "table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SGNN_CHECK(cells.size() == headers_.size(),
             "row arity " << cells.size() << " != header arity "
                          << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string s = "+";
    for (const auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
    return os.str();
  };

  std::string out;
  if (!title.empty()) out += title + "\n";
  out += rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return os.str();
}

std::string Table::fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::scientific(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(bytes < 10 ? 2 : (bytes < 100 ? 1 : 0))
     << bytes << " " << kUnits[unit];
  return os.str();
}

std::string Table::human_count(double count) {
  static const char* kUnits[] = {"", "K", "M", "B", "T"};
  int unit = 0;
  while (std::abs(count) >= 1000.0 && unit < 4) {
    count /= 1000.0;
    ++unit;
  }
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed
     << std::setprecision(std::abs(count) < 10 ? 2 : (std::abs(count) < 100 ? 1 : 0))
     << count;
  if (unit > 0) os << " " << kUnits[unit];
  return os.str();
}

}  // namespace sgnn
