#include "sgnn/data/sources.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {

const std::vector<DataSource>& all_sources() {
  static const std::vector<DataSource> sources = {
      DataSource::kANI1x, DataSource::kQM7X, DataSource::kOC2020,
      DataSource::kOC2022, DataSource::kMPTrj};
  return sources;
}

const SourceSpec& source_spec(DataSource source) {
  // Byte fractions follow Tab. I: 25, 25, 726, 395, 17 GB of 1188 GB.
  static const std::vector<SourceSpec> specs = {
      {"ANI1x", 25.0 / 1188.0, 8, 24, false},
      {"QM7-X", 25.0 / 1188.0, 10, 26, false},
      {"OC2020-20M", 726.0 / 1188.0, 56, 90, true},
      {"OC2022", 395.0 / 1188.0, 60, 100, true},
      {"MPTrj", 17.0 / 1188.0, 24, 40, true},
  };
  const auto index = static_cast<std::size_t>(source);
  SGNN_CHECK(index < specs.size(), "unknown data source");
  return specs[index];
}

namespace {

/// Grows a connected molecule-like cluster: each new atom attaches at
/// bonding distance to a random existing atom, rejecting overlaps. Compact
/// clusters at a 3.5 A cutoff give the near-complete radius graphs the
/// molecular sources show in Tab. I (~14 edges/node at ~16 atoms).
AtomicStructure grow_molecule(std::int64_t atoms,
                              const std::vector<int>& palette, Rng& rng,
                              double jitter) {
  AtomicStructure s;
  s.species.push_back(palette[rng.uniform_index(palette.size())]);
  s.positions.push_back({0, 0, 0});
  while (s.num_atoms() < atoms) {
    const int z = palette[rng.uniform_index(palette.size())];
    const auto anchor = rng.uniform_index(s.positions.size());
    const double bond =
        elements::covalent_radius(s.species[anchor]) +
        elements::covalent_radius(z) + rng.uniform(-0.05, 0.15);
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      // Random direction via normalized Gaussian.
      Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
      const double norm = dir.norm();
      if (norm < 1e-9) continue;
      const Vec3 p = s.positions[anchor] + dir * (bond / norm);
      bool ok = true;
      for (const auto& q : s.positions) {
        if ((p - q).norm() < 0.85) {
          ok = false;
          break;
        }
      }
      if (ok) {
        s.species.push_back(z);
        s.positions.push_back(p);
        placed = true;
      }
    }
    if (!placed) break;  // pathological geometry: accept a smaller molecule
  }
  if (jitter > 0) {
    for (auto& p : s.positions) {
      p += Vec3{rng.normal(0, jitter), rng.normal(0, jitter),
                rng.normal(0, jitter)};
    }
  }
  return s;
}

/// Perturbed simple-cubic lattice filling a periodic box; `species_pool`
/// atoms are assigned cyclically (ordered alloys / compounds).
AtomicStructure build_bulk(std::int64_t cells_per_axis, double lattice,
                           const std::vector<int>& species_pool, Rng& rng,
                           double jitter) {
  AtomicStructure s;
  const double box = static_cast<double>(cells_per_axis) * lattice;
  s.cell = {box, box, box};
  s.periodic = true;
  std::size_t counter = 0;
  for (std::int64_t i = 0; i < cells_per_axis; ++i) {
    for (std::int64_t j = 0; j < cells_per_axis; ++j) {
      for (std::int64_t k = 0; k < cells_per_axis; ++k) {
        s.species.push_back(species_pool[counter++ % species_pool.size()]);
        s.positions.push_back(
            {(static_cast<double>(i) + 0.5) * lattice + rng.normal(0, jitter),
             (static_cast<double>(j) + 0.5) * lattice + rng.normal(0, jitter),
             (static_cast<double>(k) + 0.5) * lattice + rng.normal(0, jitter)});
      }
    }
  }
  s.wrap_positions();
  return s;
}

/// Slab + adsorbate: a few lattice layers periodic in x/y (with vacuum
/// above along z inside a fully periodic box) and a small molecule placed
/// over the surface — the OC20/OC22 geometry class.
AtomicStructure build_slab_with_adsorbate(
    const std::vector<int>& slab_species,
    const std::vector<int>& adsorbate_palette, std::int64_t lateral_cells,
    std::int64_t layers, double lattice, Rng& rng) {
  AtomicStructure s;
  const double lx = static_cast<double>(lateral_cells) * lattice;
  const double slab_height = static_cast<double>(layers) * lattice;
  const double vacuum = 10.0;
  s.cell = {lx, lx, slab_height + vacuum};
  s.periodic = true;
  std::size_t counter = 0;
  for (std::int64_t i = 0; i < lateral_cells; ++i) {
    for (std::int64_t j = 0; j < lateral_cells; ++j) {
      for (std::int64_t k = 0; k < layers; ++k) {
        s.species.push_back(slab_species[counter++ % slab_species.size()]);
        s.positions.push_back(
            {(static_cast<double>(i) + 0.5) * lattice + rng.normal(0, 0.05),
             (static_cast<double>(j) + 0.5) * lattice + rng.normal(0, 0.05),
             (static_cast<double>(k) + 0.5) * lattice + rng.normal(0, 0.05)});
      }
    }
  }
  // Adsorbate: a 2-4 atom molecule ~2 A above a random surface site. The
  // vertical offset is measured from the adsorbate's lowest atom so the
  // molecule can never be generated inside the slab.
  const std::int64_t ads_atoms = 2 + static_cast<std::int64_t>(rng.uniform_index(3));
  AtomicStructure ads = grow_molecule(ads_atoms, adsorbate_palette, rng, 0.02);
  double ads_min_z = ads.positions.front().z;
  for (const auto& p : ads.positions) ads_min_z = std::min(ads_min_z, p.z);
  const Vec3 site{rng.uniform(0, lx), rng.uniform(0, lx),
                  slab_height + 1.6 + rng.uniform(0, 0.6) - ads_min_z};
  for (std::int64_t a = 0; a < ads.num_atoms(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    s.species.push_back(ads.species[ai]);
    s.positions.push_back(ads.positions[ai] + site);
  }
  s.wrap_positions();
  return s;
}

std::int64_t atoms_in_range(const SourceSpec& spec, Rng& rng) {
  return spec.min_atoms +
         static_cast<std::int64_t>(rng.uniform_index(
             static_cast<std::uint64_t>(spec.max_atoms - spec.min_atoms + 1)));
}

}  // namespace

AtomicStructure generate_structure(DataSource source, Rng& rng) {
  const SourceSpec& spec = source_spec(source);
  switch (source) {
    case DataSource::kANI1x:
      return grow_molecule(atoms_in_range(spec, rng),
                           {elements::kC, elements::kH, elements::kN,
                            elements::kO},
                           rng, /*jitter=*/0.03);
    case DataSource::kQM7X:
      // Includes non-equilibrium configurations: stronger distortions.
      return grow_molecule(atoms_in_range(spec, rng),
                           {elements::kC, elements::kH, elements::kN,
                            elements::kO},
                           rng, /*jitter=*/0.12);
    case DataSource::kOC2020: {
      const std::vector<std::vector<int>> metals = {
          {elements::kCu}, {elements::kPt}, {elements::kNi},
          {elements::kCu, elements::kNi}};
      return build_slab_with_adsorbate(
          metals[rng.uniform_index(metals.size())],
          {elements::kC, elements::kO, elements::kH},
          /*lateral_cells=*/4, /*layers=*/4, /*lattice=*/2.3, rng);
    }
    case DataSource::kOC2022: {
      const std::vector<std::vector<int>> oxides = {
          {elements::kTi, elements::kO},
          {elements::kFe, elements::kO},
          {elements::kAl, elements::kO, elements::kO}};
      return build_slab_with_adsorbate(
          oxides[rng.uniform_index(oxides.size())],
          {elements::kO, elements::kH},
          /*lateral_cells=*/4, /*layers=*/5, /*lattice=*/2.2, rng);
    }
    case DataSource::kMPTrj: {
      const std::vector<std::vector<int>> compounds = {
          {elements::kSi},
          {elements::kFe, elements::kO},
          {elements::kTi, elements::kO},
          {elements::kAl, elements::kSi, elements::kO}};
      return build_bulk(/*cells_per_axis=*/3, /*lattice=*/2.4,
                        compounds[rng.uniform_index(compounds.size())], rng,
                        /*jitter=*/0.08);
    }
    case DataSource::kCount: break;
  }
  throw Error("unknown data source");
}

MolecularGraph generate_sample(DataSource source, Rng& rng,
                               const ReferencePotential& potential,
                               const LabelNoise& noise) {
  const AtomicStructure structure = generate_structure(source, rng);
  MolecularGraph graph =
      MolecularGraph::from_structure(structure, potential.cutoff());
  const PotentialResult labels =
      potential.evaluate(graph.structure, graph.edges);
  graph.energy = labels.energy;
  graph.forces = labels.forces;
  graph.dipole = potential.dipole_magnitude(graph.structure);
  if (noise.energy_sigma_per_atom > 0) {
    graph.energy += rng.normal(
        0, noise.energy_sigma_per_atom *
               std::sqrt(static_cast<double>(graph.num_nodes())));
  }
  if (noise.force_sigma > 0) {
    for (auto& f : graph.forces) {
      f += Vec3{rng.normal(0, noise.force_sigma),
                rng.normal(0, noise.force_sigma),
                rng.normal(0, noise.force_sigma)};
    }
  }
  return graph;
}

}  // namespace sgnn
