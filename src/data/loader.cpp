#include "sgnn/data/loader.hpp"

#include <numeric>

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

DataLoader::DataLoader(std::vector<const MolecularGraph*> graphs,
                       std::int64_t batch_size, std::uint64_t seed,
                       bool shuffle)
    : graphs_(std::move(graphs)),
      batch_size_(batch_size),
      rng_(seed),
      shuffle_(shuffle) {
  SGNN_CHECK(!graphs_.empty(), "DataLoader needs at least one graph");
  SGNN_CHECK(batch_size_ > 0, "batch size must be positive");
  // num_batches() rounds up with `n + batch_size_ - 1`; bound the batch
  // size so that sum can never wrap int64.
  SGNN_CHECK(batch_size_ <= (std::int64_t{1} << 30),
             "batch size " << batch_size_ << " is implausibly large");
  order_.resize(graphs_.size());
  std::iota(order_.begin(), order_.end(), 0);
  begin_epoch();
}

std::int64_t DataLoader::num_batches() const {
  const auto n = static_cast<std::int64_t>(graphs_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

void DataLoader::begin_epoch() {
  cursor_ = 0;
  if (shuffle_) {
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng_.uniform_index(i)]);
    }
  }
}

bool DataLoader::has_next() const { return cursor_ < order_.size(); }

DataLoader::State DataLoader::state() const {
  State state;
  state.rng = rng_.state();
  state.order.assign(order_.begin(), order_.end());
  state.cursor = cursor_;
  return state;
}

void DataLoader::restore_state(const State& state) {
  SGNN_CHECK(state.order.size() == graphs_.size(),
             "loader state covers " << state.order.size() << " graphs, "
                                    << "loader holds " << graphs_.size());
  SGNN_CHECK(state.cursor <= state.order.size(),
             "loader state cursor out of range");
  for (const auto index : state.order) {
    SGNN_CHECK(index < graphs_.size(), "loader state order index "
                                           << index << " out of range");
  }
  rng_.set_state(state.rng);
  order_.assign(state.order.begin(), state.order.end());
  cursor_ = state.cursor;
}

GraphBatch DataLoader::next() {
  SGNN_CHECK(has_next(), "next() called on exhausted epoch");
  obs::TraceSpan span("next_batch", "data");
  std::vector<const MolecularGraph*> batch;
  batch.reserve(static_cast<std::size_t>(batch_size_));
  while (cursor_ < order_.size() &&
         batch.size() < static_cast<std::size_t>(batch_size_)) {
    batch.push_back(graphs_[order_[cursor_++]]);
  }
  GraphBatch result = GraphBatch::from_graphs(batch);
  if (span.active()) {
    span.arg("graphs", result.num_graphs).arg("atoms", result.num_nodes);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.counter("data.batches").add(1);
  registry.counter("data.graphs").add(result.num_graphs);
  return result;
}

}  // namespace sgnn
