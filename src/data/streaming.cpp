#include "sgnn/data/streaming.hpp"

#include <numeric>

#include "sgnn/util/error.hpp"

namespace sgnn {

StreamingLoader::StreamingLoader(const BpReader& reader,
                                 std::int64_t batch_size, std::uint64_t seed,
                                 std::size_t cache_capacity, bool shuffle)
    : reader_(reader),
      batch_size_(batch_size),
      rng_(seed),
      shuffle_(shuffle),
      capacity_(cache_capacity) {
  SGNN_CHECK(reader.size() > 0, "streaming loader needs a non-empty file");
  SGNN_CHECK(batch_size > 0, "batch size must be positive");
  order_.resize(reader.size());
  std::iota(order_.begin(), order_.end(), 0);
  begin_epoch();
}

std::int64_t StreamingLoader::num_batches() const {
  return (num_graphs() + batch_size_ - 1) / batch_size_;
}

void StreamingLoader::begin_epoch() {
  cursor_ = 0;
  if (shuffle_) {
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng_.uniform_index(i)]);
    }
  }
}

bool StreamingLoader::has_next() const { return cursor_ < order_.size(); }

const MolecularGraph& StreamingLoader::fetch(std::size_t record) {
  const auto it = cache_.find(record);
  if (it != cache_.end()) {
    ++stats_.hits;
    // Refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  ++stats_.misses;
  lru_.emplace_front(record, reader_.read(record));
  cache_[record] = lru_.begin();
  // Eviction is deferred to next(): every graph fetched for the batch under
  // construction must stay resident until the batch has been assembled.
  return lru_.front().second;
}

GraphBatch StreamingLoader::next() {
  SGNN_CHECK(has_next(), "next() called on exhausted epoch");
  std::vector<const MolecularGraph*> batch;
  batch.reserve(static_cast<std::size_t>(batch_size_));
  while (cursor_ < order_.size() &&
         batch.size() < static_cast<std::size_t>(batch_size_)) {
    batch.push_back(&fetch(order_[cursor_++]));
  }
  GraphBatch result = GraphBatch::from_graphs(batch);
  // Trim to capacity now that the batch no longer references cache entries
  // (GraphBatch copies everything it needs).
  while (lru_.size() > capacity_) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return result;
}

}  // namespace sgnn
