#include "sgnn/data/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"

namespace sgnn {

AggregatedDataset AggregatedDataset::generate(
    const DatasetOptions& options, const ReferencePotential& potential) {
  SGNN_CHECK(options.target_bytes > 0, "dataset byte target must be positive");
  AggregatedDataset dataset;
  Rng master(options.seed);

  for (const DataSource source : all_sources()) {
    const SourceSpec& spec = source_spec(source);
    const auto budget = static_cast<std::uint64_t>(
        spec.byte_fraction * static_cast<double>(options.target_bytes));
    Rng rng = master.split();
    auto& stats = dataset.stats_[static_cast<std::size_t>(source)];
    while (stats.bytes < budget) {
      MolecularGraph graph =
          generate_sample(source, rng, potential, options.noise);
      stats.num_graphs += 1;
      stats.num_nodes += graph.num_nodes();
      stats.num_edges += graph.num_edges();
      stats.bytes += graph.serialized_bytes();
      dataset.total_bytes_ += graph.serialized_bytes();
      dataset.graphs_.push_back(std::move(graph));
      dataset.source_of_.push_back(source);
    }
    SGNN_LOG_DEBUG << spec.name << ": " << stats.num_graphs << " graphs, "
                   << stats.bytes << " bytes";
  }
  return dataset;
}

const AggregatedDataset::SourceStats& AggregatedDataset::stats(
    DataSource source) const {
  return stats_[static_cast<std::size_t>(source)];
}

AggregatedDataset::Split AggregatedDataset::split(double test_fraction,
                                                  std::uint64_t seed) const {
  SGNN_CHECK(test_fraction > 0 && test_fraction < 1,
             "test fraction must be in (0, 1), got " << test_fraction);
  std::vector<std::size_t> order(graphs_.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  const auto test_budget = static_cast<std::uint64_t>(
      test_fraction * static_cast<double>(total_bytes_));
  Split split;
  std::uint64_t test_bytes = 0;
  for (const auto index : order) {
    if (test_bytes < test_budget) {
      split.test.push_back(index);
      test_bytes += graphs_[index].serialized_bytes();
    } else {
      split.train.push_back(index);
    }
  }
  SGNN_CHECK(!split.train.empty() && !split.test.empty(),
             "degenerate split: dataset too small");
  return split;
}

std::vector<std::size_t> AggregatedDataset::subsample(
    const std::vector<std::size_t>& pool, std::uint64_t budget_bytes,
    bool proportional, std::uint64_t seed) const {
  std::vector<std::size_t> order = pool;
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }

  if (!proportional) {
    // Cheap-data-first: molecular sources (and small bulk) before the
    // expensive catalysis sweeps — an under-curated subset whose mix does
    // not match the full-aggregate test distribution.
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       const auto rank = [](DataSource s) {
                         switch (s) {
                           case DataSource::kANI1x: return 0;
                           case DataSource::kQM7X: return 1;
                           case DataSource::kMPTrj: return 2;
                           case DataSource::kOC2020: return 3;
                           case DataSource::kOC2022: return 4;
                           case DataSource::kCount: break;
                         }
                         return 5;
                       };
                       return rank(source_of_[a]) < rank(source_of_[b]);
                     });
  }

  std::vector<std::size_t> chosen;
  std::uint64_t used = 0;
  for (const auto index : order) {
    if (used >= budget_bytes) break;
    chosen.push_back(index);
    used += graphs_[index].serialized_bytes();
  }
  SGNN_CHECK(!chosen.empty(), "subsample budget too small for one graph");
  return chosen;
}

std::uint64_t AggregatedDataset::bytes_of(
    const std::vector<std::size_t>& indices) const {
  std::uint64_t total = 0;
  for (const auto index : indices) {
    total += graphs_[index].serialized_bytes();
  }
  return total;
}

std::vector<const MolecularGraph*> AggregatedDataset::view(
    const std::vector<std::size_t>& indices) const {
  std::vector<const MolecularGraph*> pointers;
  pointers.reserve(indices.size());
  for (const auto index : indices) {
    SGNN_CHECK(index < graphs_.size(), "dataset index out of range");
    pointers.push_back(&graphs_[index]);
  }
  return pointers;
}

}  // namespace sgnn
