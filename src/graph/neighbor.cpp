#include "sgnn/graph/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

namespace {

void check_cutoff(const AtomicStructure& structure, double cutoff) {
  SGNN_CHECK(cutoff > 0, "neighbor cutoff must be positive, got " << cutoff);
  if (structure.periodic) {
    const double min_cell =
        std::min({structure.cell.x, structure.cell.y, structure.cell.z});
    SGNN_CHECK(cutoff <= 0.5 * min_cell,
               "cutoff " << cutoff << " exceeds half the smallest cell axis ("
                         << 0.5 * min_cell
                         << "); minimum-image convention would miss images");
  }
}

/// Post-hoc roofline cost of one neighbor search: the displacement math per
/// emitted edge plus streaming the positions and the edge arrays (the
/// `neighbor_search` row of the cost-model table in docs/observability.md).
void attribute_search_cost(obs::prof::KernelScope& prof, std::int64_t atoms,
                           const EdgeList& edges) {
  const auto num_edges = static_cast<std::int64_t>(edges.src.size());
  prof.cost(obs::prof::sat_mul(8, num_edges),
            obs::prof::sat_mul(
                3 * static_cast<std::int64_t>(sizeof(double)),
                obs::prof::sat_add(atoms, num_edges)));
}

/// Reorder into the canonical (dst, src) ascending order promised by the
/// EdgeList contract. (dst, src) pairs are unique (one minimum-image edge per
/// directed pair), so the order is total and the permutation deterministic.
void canonicalize_edges(EdgeList& edges) {
  const std::size_t e = edges.src.size();
  std::vector<std::size_t> perm(e);
  for (std::size_t i = 0; i < e; ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (edges.dst[a] != edges.dst[b]) return edges.dst[a] < edges.dst[b];
    return edges.src[a] < edges.src[b];
  });
  EdgeList sorted;
  sorted.src.reserve(e);
  sorted.dst.reserve(e);
  sorted.displacement.reserve(e);
  for (const std::size_t i : perm) {
    sorted.src.push_back(edges.src[i]);
    sorted.dst.push_back(edges.dst[i]);
    sorted.displacement.push_back(edges.displacement[i]);
  }
  edges = std::move(sorted);
}

}  // namespace

EdgeList brute_force_neighbors(const AtomicStructure& structure,
                               double cutoff) {
  structure.validate();
  check_cutoff(structure, cutoff);
  // Edge count is unknown until the search ran, so the cost is attributed
  // post-hoc (see the cost-model table in docs/observability.md).
  obs::prof::KernelScope prof("neighbor_search", 0, 0);
  const double cutoff_sq = cutoff * cutoff;
  const std::int64_t n = structure.num_atoms();
  EdgeList edges;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const Vec3 d = structure.displacement(i, j);
      if (d.norm_squared() <= cutoff_sq) {
        edges.src.push_back(i);
        edges.dst.push_back(j);
        edges.displacement.push_back(d);
        edges.src.push_back(j);
        edges.dst.push_back(i);
        edges.displacement.push_back(-d);
      }
    }
  }
  canonicalize_edges(edges);
  attribute_search_cost(prof, n, edges);
  return edges;
}

EdgeList cell_list_neighbors(const AtomicStructure& structure, double cutoff) {
  structure.validate();
  check_cutoff(structure, cutoff);
  // Opened before the empty-structure early return so even no-op searches
  // land in the profile; cost is attributed post-hoc as above.
  obs::prof::KernelScope prof("neighbor_search", 0, 0);
  const std::int64_t n = structure.num_atoms();
  if (n == 0) return {};

  // Bounding region: the cell when periodic, the axis-aligned bounding box
  // otherwise (padded so boundary atoms land strictly inside).
  Vec3 origin{0, 0, 0};
  Vec3 extent = structure.cell;
  if (!structure.periodic) {
    Vec3 lo = structure.positions.front();
    Vec3 hi = lo;
    for (const auto& p : structure.positions) {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      lo.z = std::min(lo.z, p.z);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
      hi.z = std::max(hi.z, p.z);
    }
    origin = lo;
    extent = (hi - lo) + Vec3{1e-9, 1e-9, 1e-9};
  }

  const auto bins_along = [cutoff](double length) {
    const double ratio = std::floor(length / cutoff);
    // The per-axis count feeds an int64 flat index; bound it well below the
    // cast's value range so the float->int conversion is always defined.
    SGNN_CHECK(ratio < static_cast<double>(std::int64_t{1} << 20),
               "cell grid has " << ratio << " bins along one axis (extent "
                                << length << ", cutoff " << cutoff
                                << "); implausible input");
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(ratio));
  };
  const std::int64_t bx = bins_along(extent.x);
  const std::int64_t by = bins_along(extent.y);
  const std::int64_t bz = bins_along(extent.z);
  // Guard the product in floating point before the int64 multiply can wrap.
  SGNN_CHECK(static_cast<double>(bx) * static_cast<double>(by) *
                     static_cast<double>(bz) <=
                 1e9,
             "cell grid of " << bx << "x" << by << "x" << bz
                             << " bins is implausibly large");
  const std::int64_t num_bins = bx * by * bz;

  const auto bin_coord = [&](const Vec3& p, std::int64_t& ix, std::int64_t& iy,
                             std::int64_t& iz) {
    Vec3 q = p - origin;
    if (structure.periodic) {
      q.x -= extent.x * std::floor(q.x / extent.x);
      q.y -= extent.y * std::floor(q.y / extent.y);
      q.z -= extent.z * std::floor(q.z / extent.z);
    }
    // Explicit floor before the cast: for in-range coordinates it matches
    // the old truncation, and a coordinate pushed just below zero by
    // rounding floors to -1 and is clamped below instead of relying on
    // truncation-toward-zero.
    ix = std::min<std::int64_t>(
        bx - 1, static_cast<std::int64_t>(
                    std::floor(q.x / extent.x * static_cast<double>(bx))));
    iy = std::min<std::int64_t>(
        by - 1, static_cast<std::int64_t>(
                    std::floor(q.y / extent.y * static_cast<double>(by))));
    iz = std::min<std::int64_t>(
        bz - 1, static_cast<std::int64_t>(
                    std::floor(q.z / extent.z * static_cast<double>(bz))));
    ix = std::max<std::int64_t>(0, ix);
    iy = std::max<std::int64_t>(0, iy);
    iz = std::max<std::int64_t>(0, iz);
  };

  // Bucket atoms.
  std::vector<std::vector<std::int64_t>> bins(
      static_cast<std::size_t>(num_bins));
  for (std::int64_t a = 0; a < n; ++a) {
    std::int64_t ix;
    std::int64_t iy;
    std::int64_t iz;
    bin_coord(structure.positions[static_cast<std::size_t>(a)], ix, iy, iz);
    bins[static_cast<std::size_t>((ix * by + iy) * bz + iz)].push_back(a);
  }

  const double cutoff_sq = cutoff * cutoff;

  // Visit each bin and its 27-neighborhood; periodic wrap when needed. When
  // an axis has fewer than 3 bins the wrapped neighborhood offsets alias
  // (e.g. +1 and -1 reach the same bin), so the wrapped bin ids are
  // deduplicated with sort+unique before the pair scan.
  //
  // The bin loop is sharded across the pool over the flattened bin index;
  // each chunk appends to its own EdgeList and the chunks are concatenated
  // in index order afterwards, reproducing the serial edge order exactly.
  const auto scan_bin = [&](std::int64_t flat, EdgeList& edges) {
    const std::int64_t ix = flat / (by * bz);
    const std::int64_t iy = (flat / bz) % by;
    const std::int64_t iz = flat % bz;
    const auto& home = bins[static_cast<std::size_t>(flat)];
    if (home.empty()) return;
    std::vector<std::int64_t> neighbor_bins;
    for (std::int64_t ox = -1; ox <= 1; ++ox) {
      for (std::int64_t oy = -1; oy <= 1; ++oy) {
        for (std::int64_t oz = -1; oz <= 1; ++oz) {
          std::int64_t jx = ix + ox;
          std::int64_t jy = iy + oy;
          std::int64_t jz = iz + oz;
          if (structure.periodic) {
            jx = (jx + bx) % bx;
            jy = (jy + by) % by;
            jz = (jz + bz) % bz;
          } else if (jx < 0 || jx >= bx || jy < 0 || jy >= by || jz < 0 ||
                     jz >= bz) {
            continue;
          }
          neighbor_bins.push_back((jx * by + jy) * bz + jz);
        }
      }
    }
    std::sort(neighbor_bins.begin(), neighbor_bins.end());
    neighbor_bins.erase(
        std::unique(neighbor_bins.begin(), neighbor_bins.end()),
        neighbor_bins.end());

    for (const auto nb : neighbor_bins) {
      const auto& other = bins[static_cast<std::size_t>(nb)];
      for (const auto a : home) {
        for (const auto b : other) {
          if (b <= a) continue;  // undirected pair visited once
          const Vec3 d = structure.displacement(a, b);
          if (d.norm_squared() <= cutoff_sq) {
            edges.src.push_back(a);
            edges.dst.push_back(b);
            edges.displacement.push_back(d);
            edges.src.push_back(b);
            edges.dst.push_back(a);
            edges.displacement.push_back(-d);
          }
        }
      }
    }
  };

  const std::int64_t grain = num_bins / 64 + 1;
  const std::int64_t nchunks = parallel_chunk_count(0, num_bins, grain);
  std::vector<EdgeList> chunk_edges(static_cast<std::size_t>(nchunks));
  parallel_for(0, num_bins, grain,
               [&](std::int64_t bin_begin, std::int64_t bin_end) {
                 EdgeList& local =
                     chunk_edges[static_cast<std::size_t>(bin_begin / grain)];
                 for (std::int64_t flat = bin_begin; flat < bin_end; ++flat) {
                   scan_bin(flat, local);
                 }
               });

  EdgeList edges;
  std::size_t total = 0;
  for (const auto& local : chunk_edges) total += local.src.size();
  edges.src.reserve(total);
  edges.dst.reserve(total);
  edges.displacement.reserve(total);
  for (const auto& local : chunk_edges) {
    edges.src.insert(edges.src.end(), local.src.begin(), local.src.end());
    edges.dst.insert(edges.dst.end(), local.dst.begin(), local.dst.end());
    edges.displacement.insert(edges.displacement.end(),
                              local.displacement.begin(),
                              local.displacement.end());
  }
  canonicalize_edges(edges);
  attribute_search_cost(prof, n, edges);
  return edges;
}

EdgeList build_neighbors(const AtomicStructure& structure, double cutoff) {
  obs::TraceSpan span("neighbor_build", "graph");
  // The KernelScope lives in the search kernels themselves (they are public
  // entry points in their own right); this wrapper only picks the algorithm.
  // Cell lists win once the bookkeeping amortizes; ~100 atoms in practice.
  constexpr std::int64_t kBruteForceMax = 100;
  EdgeList edges = structure.num_atoms() <= kBruteForceMax
                       ? brute_force_neighbors(structure, cutoff)
                       : cell_list_neighbors(structure, cutoff);
  if (span.active()) {
    span.arg("atoms", structure.num_atoms())
        .arg("edges", static_cast<std::int64_t>(edges.src.size()));
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.counter("neighbor.builds").add(1);
  registry.counter("neighbor.edges")
      .add(static_cast<std::int64_t>(edges.src.size()));
  return edges;
}

}  // namespace sgnn
