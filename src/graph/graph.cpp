#include "sgnn/graph/graph.hpp"

#include "sgnn/util/error.hpp"

namespace sgnn {

MolecularGraph MolecularGraph::from_structure(AtomicStructure structure,
                                              double cutoff) {
  structure.validate();
  MolecularGraph graph;
  graph.edges = build_neighbors(structure, cutoff);
  graph.structure = std::move(structure);
  graph.forces.assign(static_cast<std::size_t>(graph.num_nodes()),
                      Vec3{0, 0, 0});
  return graph;
}

std::size_t MolecularGraph::serialized_bytes() const {
  // Mirrors store/serialize.cpp exactly; graph_serialization_test pins the
  // two implementations together.
  const auto n = static_cast<std::size_t>(num_nodes());
  const auto e = static_cast<std::size_t>(num_edges());
  std::size_t bytes = 0;
  bytes += 8;                     // node count
  bytes += 8;                     // edge count
  bytes += 8;                     // energy
  bytes += 8;                     // dipole
  bytes += 3 * 8 + 1;             // cell + periodic flag
  bytes += n * 4;                 // species (int32)
  bytes += n * 3 * 8;             // positions
  bytes += n * 3 * 8;             // forces
  bytes += e * 2 * 8;             // edge endpoints
  bytes += e * 3 * 8;             // edge displacements
  return bytes;
}

void MolecularGraph::validate() const {
  structure.validate();
  SGNN_CHECK(forces.size() == structure.species.size(),
             "graph has " << forces.size() << " force labels for "
                          << structure.species.size() << " atoms");
  SGNN_CHECK(edges.src.size() == edges.dst.size() &&
                 edges.src.size() == edges.displacement.size(),
             "edge arrays disagree in length");
  const std::int64_t n = num_nodes();
  for (std::int64_t k = 0; k < num_edges(); ++k) {
    const auto i = edges.src[static_cast<std::size_t>(k)];
    const auto j = edges.dst[static_cast<std::size_t>(k)];
    SGNN_CHECK(i >= 0 && i < n && j >= 0 && j < n,
               "edge " << k << " endpoint out of range");
    SGNN_CHECK(i != j, "edge " << k << " is a self-loop");
  }
}

}  // namespace sgnn
