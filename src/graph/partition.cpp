#include "sgnn/graph/partition.hpp"

#include <algorithm>
#include <tuple>

#include "sgnn/obs/prof.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn::gpar {

GraphPartition GraphPartition::build(const GraphBatch& batch, int num_ranks) {
  SGNN_CHECK(num_ranks >= 1, "partition needs >= 1 rank, got " << num_ranks);
  obs::prof::KernelScope prof(
      "partition_build", 0,
      obs::prof::sat_mul(
          2 * static_cast<std::int64_t>(sizeof(std::int64_t)),
          obs::prof::sat_add(batch.num_nodes, batch.num_edges)));

  GraphPartition part;
  part.num_ranks = num_ranks;
  part.num_nodes = batch.num_nodes;
  part.num_edges = batch.num_edges;
  part.ranks.resize(static_cast<std::size_t>(num_ranks));

  for (int r = 0; r < num_ranks; ++r) {
    RankPartition& rp = part.ranks[static_cast<std::size_t>(r)];
    std::tie(rp.owned_begin, rp.owned_end) =
        owned_range(batch.num_nodes, r, num_ranks);
    rp.inbound.resize(static_cast<std::size_t>(num_ranks));
  }
  SGNN_CHECK(part.ranks.front().owned_begin == 0 &&
                 part.ranks.back().owned_end == batch.num_nodes,
             "owned ranges do not cover the batch");

  // Edges are in canonical (dst, src) order, so each rank's edges (dst in
  // its owned range) are one contiguous slice found by binary search.
  SGNN_CHECK(std::is_sorted(batch.edge_dst.begin(), batch.edge_dst.end()),
             "edge list is not in canonical dst-major order; the partition "
             "requires the neighbor-search ordering contract");
  for (int r = 0; r < num_ranks; ++r) {
    RankPartition& rp = part.ranks[static_cast<std::size_t>(r)];
    rp.edge_begin = std::lower_bound(batch.edge_dst.begin(),
                                     batch.edge_dst.end(), rp.owned_begin) -
                    batch.edge_dst.begin();
    rp.edge_end = std::lower_bound(batch.edge_dst.begin(),
                                   batch.edge_dst.end(), rp.owned_end) -
                  batch.edge_dst.begin();

    // Halo = sorted unique non-owned sources of the slice.
    for (std::int64_t e = rp.edge_begin; e < rp.edge_end; ++e) {
      const std::int64_t src = batch.edge_src[static_cast<std::size_t>(e)];
      if (src < rp.owned_begin || src >= rp.owned_end) {
        rp.halo.push_back(src);
      }
    }
    std::sort(rp.halo.begin(), rp.halo.end());
    rp.halo.erase(std::unique(rp.halo.begin(), rp.halo.end()),
                  rp.halo.end());

    // Local endpoints and the ghost-edge schedule, in slice order.
    const std::int64_t owned = rp.num_owned();
    rp.local_src.reserve(static_cast<std::size_t>(rp.num_local_edges()));
    rp.local_dst.reserve(static_cast<std::size_t>(rp.num_local_edges()));
    for (std::int64_t e = rp.edge_begin; e < rp.edge_end; ++e) {
      const std::int64_t src = batch.edge_src[static_cast<std::size_t>(e)];
      const std::int64_t dst = batch.edge_dst[static_cast<std::size_t>(e)];
      rp.local_dst.push_back(dst - rp.owned_begin);
      if (src >= rp.owned_begin && src < rp.owned_end) {
        rp.local_src.push_back(src - rp.owned_begin);
      } else {
        const auto it =
            std::lower_bound(rp.halo.begin(), rp.halo.end(), src);
        rp.local_src.push_back(
            owned + (it - rp.halo.begin()));
        rp.ghost_edges.push_back(e - rp.edge_begin);
      }
    }
  }
  SGNN_CHECK(part.ranks.front().edge_begin == 0 &&
                 part.ranks.back().edge_end == batch.num_edges,
             "edge slices do not cover the batch");

  // Boundary of rank o = sorted union of owned ids appearing in any other
  // rank's halo (what o posts each exchange).
  for (int r = 0; r < num_ranks; ++r) {
    const RankPartition& rp = part.ranks[static_cast<std::size_t>(r)];
    for (const std::int64_t g : rp.halo) {
      part.ranks[static_cast<std::size_t>(part.owner(g))].boundary.push_back(
          g);
    }
  }
  for (int r = 0; r < num_ranks; ++r) {
    auto& boundary = part.ranks[static_cast<std::size_t>(r)].boundary;
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
  }

  // halo_fetch: row of each halo id in the rank-order concatenation of the
  // boundary lists.
  std::vector<std::int64_t> boundary_offset(
      static_cast<std::size_t>(num_ranks) + 1, 0);
  for (int r = 0; r < num_ranks; ++r) {
    boundary_offset[static_cast<std::size_t>(r) + 1] =
        boundary_offset[static_cast<std::size_t>(r)] +
        static_cast<std::int64_t>(
            part.ranks[static_cast<std::size_t>(r)].boundary.size());
  }
  for (int r = 0; r < num_ranks; ++r) {
    RankPartition& rp = part.ranks[static_cast<std::size_t>(r)];
    rp.halo_fetch.reserve(rp.halo.size());
    for (const std::int64_t g : rp.halo) {
      const auto o = static_cast<std::size_t>(part.owner(g));
      const auto& boundary = part.ranks[o].boundary;
      const auto it = std::lower_bound(boundary.begin(), boundary.end(), g);
      SGNN_CHECK(it != boundary.end() && *it == g,
                 "halo node " << g << " missing from owner boundary");
      rp.halo_fetch.push_back(boundary_offset[o] + (it - boundary.begin()));
    }
  }

  // Backward merge schedules: walking rank r's edge slice in order, ghost
  // edge g targets owner(src); the owner folds those rows in (r, position)
  // order, which continues the global per-receiver fold exactly.
  for (int r = 0; r < num_ranks; ++r) {
    const RankPartition& rp = part.ranks[static_cast<std::size_t>(r)];
    std::int64_t g = 0;
    for (std::int64_t e = rp.edge_begin; e < rp.edge_end; ++e) {
      const std::int64_t src = batch.edge_src[static_cast<std::size_t>(e)];
      if (src >= rp.owned_begin && src < rp.owned_end) continue;
      RankPartition& owner_rp =
          part.ranks[static_cast<std::size_t>(part.owner(src))];
      owner_rp.inbound[static_cast<std::size_t>(r)].push_back(
          {g, src - owner_rp.owned_begin});
      ++g;
    }
    SGNN_CHECK(g == static_cast<std::int64_t>(rp.ghost_edges.size()),
               "ghost-edge count mismatch while building merge schedules");
  }
  return part;
}

std::vector<std::int64_t> spatial_order(const AtomicStructure& structure) {
  obs::prof::KernelScope prof(
      "spatial_order", 0,
      obs::prof::sat_mul(3 * static_cast<std::int64_t>(sizeof(double)),
                         structure.num_atoms()));
  const std::int64_t n = structure.num_atoms();
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  if (n == 0) return order;

  // Rank the axes by extent, longest first; zero-extent axes (planar slabs,
  // wires, coincident atoms) still participate but compare equal, so the
  // original index breaks every remaining tie deterministically.
  Vec3 lo = structure.positions.front();
  Vec3 hi = lo;
  for (const auto& p : structure.positions) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  const double extent[3] = {hi.x - lo.x, hi.y - lo.y, hi.z - lo.z};
  int axes[3] = {0, 1, 2};
  std::sort(axes, axes + 3, [&](int a, int b) {
    if (extent[a] != extent[b]) return extent[a] > extent[b];
    return a < b;
  });

  const auto coord = [&](std::int64_t i, int axis) {
    const Vec3& p = structure.positions[static_cast<std::size_t>(i)];
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };
  std::sort(order.begin(), order.end(),
            [&](std::int64_t a, std::int64_t b) {
              for (const int axis : axes) {
                const double ca = coord(a, axis);
                const double cb = coord(b, axis);
                if (ca != cb) return ca < cb;
              }
              return a < b;
            });
  return order;
}

}  // namespace sgnn::gpar
