#include "sgnn/graph/structure.hpp"

#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {
namespace elements {

std::string symbol(int atomic_number) {
  switch (atomic_number) {
    case kH: return "H";
    case kC: return "C";
    case kN: return "N";
    case kO: return "O";
    case kAl: return "Al";
    case kSi: return "Si";
    case kTi: return "Ti";
    case kFe: return "Fe";
    case kNi: return "Ni";
    case kCu: return "Cu";
    case kPt: return "Pt";
    default: {
      // Built up in two steps: operator+(const char*, std::string&&)
      // trips a GCC 12 -Werror=restrict false positive here.
      std::string name = "X";
      name += std::to_string(atomic_number);
      return name;
    }
  }
}

double covalent_radius(int atomic_number) {
  switch (atomic_number) {
    case kH: return 0.31;
    case kC: return 0.76;
    case kN: return 0.71;
    case kO: return 0.66;
    case kAl: return 1.21;
    case kSi: return 1.11;
    case kTi: return 1.60;
    case kFe: return 1.32;
    case kNi: return 1.24;
    case kCu: return 1.32;
    case kPt: return 1.36;
    default: return 1.2;
  }
}

double atomic_mass(int atomic_number) {
  switch (atomic_number) {
    case kH: return 1.008;
    case kC: return 12.011;
    case kN: return 14.007;
    case kO: return 15.999;
    case kAl: return 26.982;
    case kSi: return 28.085;
    case kTi: return 47.867;
    case kFe: return 55.845;
    case kNi: return 58.693;
    case kCu: return 63.546;
    case kPt: return 195.084;
    default: return 2.0 * atomic_number;
  }
}

}  // namespace elements

Vec3 AtomicStructure::displacement(std::int64_t i, std::int64_t j) const {
  SGNN_DCHECK(i >= 0 && i < num_atoms() && j >= 0 && j < num_atoms(),
              "displacement indices out of range");
  Vec3 d = positions[static_cast<std::size_t>(j)] -
           positions[static_cast<std::size_t>(i)];
  if (periodic) {
    d.x -= cell.x * std::round(d.x / cell.x);
    d.y -= cell.y * std::round(d.y / cell.y);
    d.z -= cell.z * std::round(d.z / cell.z);
  }
  return d;
}

void AtomicStructure::wrap_positions() {
  if (!periodic) return;
  for (auto& p : positions) {
    p.x -= cell.x * std::floor(p.x / cell.x);
    p.y -= cell.y * std::floor(p.y / cell.y);
    p.z -= cell.z * std::floor(p.z / cell.z);
  }
}

void AtomicStructure::validate() const {
  SGNN_CHECK(species.size() == positions.size(),
             "structure has " << species.size() << " species but "
                              << positions.size() << " positions");
  for (const auto z : species) {
    SGNN_CHECK(z > 0 && z < elements::kMaxAtomicNumber,
               "atomic number " << z << " out of supported range");
  }
  if (periodic) {
    SGNN_CHECK(cell.x > 0 && cell.y > 0 && cell.z > 0,
               "periodic structure requires positive cell, got (" << cell.x
                   << ", " << cell.y << ", " << cell.z << ")");
  }
}

}  // namespace sgnn
