#include "sgnn/graph/batch.hpp"

#include "sgnn/util/error.hpp"

namespace sgnn {

GraphBatch GraphBatch::from_graphs(
    const std::vector<const MolecularGraph*>& graphs) {
  // An empty request list is a valid (if useless) batch: every array comes
  // out zero-length and num_graphs == 0, so callers can uniformly test
  // `batch.num_graphs` instead of guarding the constructor.
  // Batch buffers are transient training data, not retained activations.
  const ScopedMemCategory scope(MemCategory::kWorkspace);

  GraphBatch batch;
  batch.num_graphs = static_cast<std::int64_t>(graphs.size());
  for (const auto* g : graphs) {
    SGNN_CHECK(g != nullptr, "null graph in batch");
    batch.num_nodes += g->num_nodes();
    batch.num_edges += g->num_edges();
  }

  batch.species.reserve(static_cast<std::size_t>(batch.num_nodes));
  batch.edge_src.reserve(static_cast<std::size_t>(batch.num_edges));
  batch.edge_dst.reserve(static_cast<std::size_t>(batch.num_edges));
  batch.node_to_graph.reserve(static_cast<std::size_t>(batch.num_nodes));
  batch.positions = Tensor::zeros(Shape{batch.num_nodes, 3});
  batch.edge_shift = Tensor::zeros(Shape{batch.num_edges, 3});
  batch.energy = Tensor::zeros(Shape{batch.num_graphs, 1});
  batch.dipole = Tensor::zeros(Shape{batch.num_graphs, 1});
  batch.forces = Tensor::zeros(Shape{batch.num_nodes, 3});

  real* pos = batch.positions.data();
  real* shift = batch.edge_shift.data();
  real* energy = batch.energy.data();
  real* dipole = batch.dipole.data();
  real* forces = batch.forces.data();

  std::int64_t node_offset = 0;
  std::int64_t edge_offset = 0;
  for (std::int64_t gi = 0; gi < batch.num_graphs; ++gi) {
    const MolecularGraph& g = *graphs[static_cast<std::size_t>(gi)];
    const std::int64_t n = g.num_nodes();
    const std::int64_t e = g.num_edges();
    SGNN_CHECK(g.forces.size() == static_cast<std::size_t>(n),
               "graph " << gi << " has unlabeled forces");

    for (std::int64_t a = 0; a < n; ++a) {
      const auto ai = static_cast<std::size_t>(a);
      batch.species.push_back(g.structure.species[ai]);
      batch.node_to_graph.push_back(gi);
      const Vec3& p = g.structure.positions[ai];
      pos[(node_offset + a) * 3 + 0] = p.x;
      pos[(node_offset + a) * 3 + 1] = p.y;
      pos[(node_offset + a) * 3 + 2] = p.z;
      const Vec3& f = g.forces[ai];
      forces[(node_offset + a) * 3 + 0] = f.x;
      forces[(node_offset + a) * 3 + 1] = f.y;
      forces[(node_offset + a) * 3 + 2] = f.z;
    }
    energy[gi] = g.energy;
    dipole[gi] = g.dipole;

    for (std::int64_t k = 0; k < e; ++k) {
      const auto ki = static_cast<std::size_t>(k);
      const std::int64_t src = g.edges.src[ki];
      const std::int64_t dst = g.edges.dst[ki];
      batch.edge_src.push_back(node_offset + src);
      batch.edge_dst.push_back(node_offset + dst);
      // shift = stored minimum-image displacement - raw displacement, so
      // raw + shift reproduces the minimum image. Zero for open systems.
      const Vec3& d = g.edges.displacement[ki];
      const Vec3 raw = g.structure.positions[static_cast<std::size_t>(dst)] -
                       g.structure.positions[static_cast<std::size_t>(src)];
      const Vec3 s = d - raw;
      shift[(edge_offset + k) * 3 + 0] = s.x;
      shift[(edge_offset + k) * 3 + 1] = s.y;
      shift[(edge_offset + k) * 3 + 2] = s.z;
    }
    node_offset += n;
    edge_offset += e;
  }
  return batch;
}

GraphBatch GraphBatch::from_graphs(const std::vector<MolecularGraph>& graphs) {
  std::vector<const MolecularGraph*> pointers;
  pointers.reserve(graphs.size());
  for (const auto& g : graphs) pointers.push_back(&g);
  return from_graphs(pointers);
}

std::vector<std::int64_t> GraphBatch::nodes_per_graph() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_graphs), 0);
  for (const auto gi : node_to_graph) {
    ++counts[static_cast<std::size_t>(gi)];
  }
  return counts;
}

}  // namespace sgnn
