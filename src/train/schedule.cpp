#include "sgnn/train/schedule.hpp"

#include <cmath>

#include "sgnn/util/error.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

LrSchedule LrSchedule::constant(double learning_rate) {
  SGNN_CHECK(learning_rate > 0, "learning rate must be positive");
  LrSchedule s;
  s.kind_ = Kind::kConstant;
  s.base_ = learning_rate;
  return s;
}

LrSchedule LrSchedule::exponential(double learning_rate, double decay,
                                   std::int64_t steps_per_epoch) {
  SGNN_CHECK(learning_rate > 0 && decay > 0 && decay <= 1,
             "invalid exponential schedule");
  SGNN_CHECK(steps_per_epoch > 0, "steps_per_epoch must be positive");
  LrSchedule s;
  s.kind_ = Kind::kExponential;
  s.base_ = learning_rate;
  s.decay_ = decay;
  s.steps_per_epoch_ = steps_per_epoch;
  return s;
}

LrSchedule LrSchedule::warmup_cosine(double peak, std::int64_t warmup_steps,
                                     std::int64_t total_steps,
                                     double final_fraction) {
  SGNN_CHECK(peak > 0, "peak learning rate must be positive");
  SGNN_CHECK(warmup_steps >= 0 && total_steps > warmup_steps,
             "invalid warmup/total step counts");
  SGNN_CHECK(final_fraction >= 0 && final_fraction <= 1,
             "final fraction must be in [0, 1]");
  LrSchedule s;
  s.kind_ = Kind::kWarmupCosine;
  s.base_ = peak;
  s.warmup_steps_ = warmup_steps;
  s.total_steps_ = total_steps;
  s.final_fraction_ = final_fraction;
  return s;
}

double LrSchedule::at_step(std::int64_t step) const {
  SGNN_CHECK(step >= 0, "negative step");
  switch (kind_) {
    case Kind::kConstant:
      return base_;
    case Kind::kExponential:
      return base_ * std::pow(decay_, static_cast<double>(
                                          step / steps_per_epoch_));
    case Kind::kWarmupCosine: {
      if (warmup_steps_ > 0 && step < warmup_steps_) {
        // Linear ramp, starting one increment above zero.
        return base_ * static_cast<double>(step + 1) /
               static_cast<double>(warmup_steps_);
      }
      const double floor = base_ * final_fraction_;
      if (step >= total_steps_) return floor;
      const double progress =
          static_cast<double>(step - warmup_steps_) /
          static_cast<double>(total_steps_ - warmup_steps_);
      return floor +
             (base_ - floor) * 0.5 * (1.0 + std::cos(M_PI * progress));
    }
  }
  throw Error("unknown schedule kind");
}

double grad_l2_norm(const std::vector<Tensor>& parameters) {
  double total_sq = 0;
  for (const auto& p : parameters) {
    const Tensor grad = p.grad();
    if (!grad.defined()) continue;
    const real* g = grad.data();
    // Chunked deterministic reduction: partials combined in chunk order so
    // the norm is bit-identical across pool sizes.
    total_sq += parallel_reduce_sum(
        0, grad.numel(), kParallelMinWork,
        [g](std::int64_t begin, std::int64_t end) {
          double acc = 0;
          for (std::int64_t i = begin; i < end; ++i) {
            acc += static_cast<double>(g[i]) * static_cast<double>(g[i]);
          }
          return acc;
        });
  }
  return std::sqrt(total_sq);
}

double clip_grad_norm(const std::vector<Tensor>& parameters,
                      double max_norm) {
  SGNN_CHECK(max_norm > 0, "max_norm must be positive");
  const double norm = grad_l2_norm(parameters);
  if (norm > max_norm && norm > 0) {
    const auto scale = static_cast<real>(max_norm / norm);
    for (const auto& p : parameters) {
      Tensor grad = p.grad();
      if (!grad.defined()) continue;
      real* g = grad.data();
      parallel_for(0, grad.numel(), kParallelMinWork,
                   [=](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       g[i] *= scale;
                     }
                   });
    }
  }
  return norm;
}

}  // namespace sgnn
