#include "sgnn/train/bucketer.hpp"

#include <algorithm>

#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

std::vector<GradBucketer::Bucket> GradBucketer::plan(
    std::size_t total_elements, std::size_t bucket_bytes) {
  std::vector<Bucket> buckets;
  if (total_elements == 0) return buckets;
  const std::size_t cap = std::max<std::size_t>(1, bucket_bytes / sizeof(real));
  std::size_t hi = total_elements;
  while (hi > 0) {
    const std::size_t lo = hi > cap ? hi - cap : 0;
    buckets.push_back(Bucket{lo, hi});
    hi = lo;
  }
  return buckets;
}

GradBucketer::GradBucketer(Communicator& comm, std::vector<Tensor> parameters,
                           CollectiveKind kind, std::size_t bucket_bytes)
    : comm_(comm), parameters_(std::move(parameters)), kind_(kind) {
  SGNN_CHECK(kind == CollectiveKind::kAllReduce ||
                 kind == CollectiveKind::kReduceScatter,
             "GradBucketer buckets gradient all-reduce or reduce-scatter");
  param_offsets_.reserve(parameters_.size());
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    const Tensor& p = parameters_[i];
    SGNN_CHECK(p.defined(), "GradBucketer parameter " << i << " undefined");
    param_offsets_.push_back(total_elements_);
    leaf_to_param_.emplace(p.impl().get(), i);
    total_elements_ += static_cast<std::size_t>(p.numel());
  }
  buckets_ = plan(total_elements_, bucket_bytes);

  // Overlap maps in both directions; both ranges are contiguous, so an
  // interval per entry suffices.
  param_buckets_.assign(parameters_.size(), {0, 0});
  bucket_params_.assign(buckets_.size(), {0, 0});
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    const std::size_t lo = param_offsets_[i];
    const std::size_t hi = lo + static_cast<std::size_t>(parameters_[i].numel());
    std::size_t first = buckets_.size();
    std::size_t last = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b].begin < hi && lo < buckets_[b].end) {
        first = std::min(first, b);
        last = std::max(last, b);
      }
    }
    // A zero-element parameter overlaps no bucket; give it an empty range
    // so completion bookkeeping skips it.
    if (first > last) {
      param_buckets_[i] = {1, 0};
    } else {
      param_buckets_[i] = {first, last};
    }
  }
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::size_t first = parameters_.size();
    std::size_t last = 0;
    for (std::size_t i = 0; i < parameters_.size(); ++i) {
      const std::size_t lo = param_offsets_[i];
      const std::size_t hi =
          lo + static_cast<std::size_t>(parameters_[i].numel());
      if (buckets_[b].begin < hi && lo < buckets_[b].end) {
        first = std::min(first, i);
        last = std::max(last, i);
      }
    }
    SGNN_CHECK(first <= last, "bucket " << b << " overlaps no parameter");
    bucket_params_[b] = {first, last};
  }

  if (kind_ == CollectiveKind::kReduceScatter) {
    counts_.resize(buckets_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      auto& counts = counts_[b];
      counts.assign(static_cast<std::size_t>(comm_.num_ranks()), 0);
      for (int r = 0; r < comm_.num_ranks(); ++r) {
        const auto [s, e] =
            Communicator::shard_range(total_elements_, r, comm_.num_ranks());
        const std::size_t lo = std::max(s, buckets_[b].begin);
        const std::size_t hi = std::min(e, buckets_[b].end);
        counts[static_cast<std::size_t>(r)] = hi > lo ? hi - lo : 0;
      }
    }
  }

  staging_.resize(buckets_.size());
  pieces_.resize(buckets_.size());
  handles_.resize(buckets_.size());
  event_index_.assign(buckets_.size(), 0);
  if (total_elements_ > 0) {
    // The per-bucket staging tiles the flat vector exactly once; the ZeRO
    // pieces add at most this rank's shard on top.
    std::size_t staged = total_elements_;
    if (kind_ == CollectiveKind::kReduceScatter) {
      std::size_t max_shard = 0;
      for (int r = 0; r < comm_.num_ranks(); ++r) {
        const auto [s, e] =
            Communicator::shard_range(total_elements_, r, comm_.num_ranks());
        max_shard = std::max(max_shard, e - s);
      }
      staged += max_shard;
    }
    staging_bytes_.emplace(staged * sizeof(real), MemCategory::kWorkspace);
  }
}

GradBucketer::~GradBucketer() {
  // A step abandoned mid-flight (exception between post and drain) leaves
  // live handles whose buffers the progress engine may still write; block
  // until they settle before the staging vectors die. Errors are already
  // being reported through the original exception — swallow them here.
  for (auto& handle : handles_) {
    if (!handle.valid()) continue;
    try {
      handle.wait();
    } catch (...) {  // NOLINT
    }
  }
}

void GradBucketer::begin_step(int rank) {
  SGNN_CHECK(!active_, "begin_step() while a bucketed step is in flight");
  SGNN_CHECK(rank >= 0 && rank < comm_.num_ranks(), "invalid rank " << rank);
  rank_ = rank;
  active_ = true;
  param_done_.assign(parameters_.size(), false);
  bucket_pending_.assign(buckets_.size(), 0);
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    const auto [first, last] = param_buckets_[i];
    for (std::size_t b = first; b <= last && b < buckets_.size(); ++b) {
      ++bucket_pending_[b];
    }
  }
  next_post_ = 0;
  std::fill(handles_.begin(), handles_.end(), CollectiveHandle{});
  events_.clear();
  step_timer_.reset();
}

void GradBucketer::on_leaf_grad(const void* leaf) {
  if (!active_) return;
  const auto it = leaf_to_param_.find(leaf);
  if (it == leaf_to_param_.end()) return;  // checkpoint-recompute leaf etc.
  const std::size_t i = it->second;
  if (param_done_[i]) return;
  param_done_[i] = true;
  const auto [first, last] = param_buckets_[i];
  for (std::size_t b = first; b <= last && b < buckets_.size(); ++b) {
    SGNN_CHECK(bucket_pending_[b] > 0, "bucket readiness underflow");
    --bucket_pending_[b];
  }
  post_ready();
}

void GradBucketer::post_ready() {
  // Post strictly in bucket order, holding back buckets that completed
  // early: the post FIFO must be identical on every rank, and autograd's
  // completion order — while deterministic — is a property of the graph,
  // not of the layout.
  while (next_post_ < buckets_.size() && bucket_pending_[next_post_] == 0) {
    post_bucket(next_post_);
    ++next_post_;
  }
}

void GradBucketer::post_bucket(std::size_t b) {
  const Bucket& bucket = buckets_[b];
  auto& payload = staging_[b];
  payload.assign(bucket.end - bucket.begin, real{0});
  const auto [first, last] = bucket_params_[b];
  for (std::size_t i = first; i <= last; ++i) {
    const std::size_t p_lo = param_offsets_[i];
    const std::size_t p_hi =
        p_lo + static_cast<std::size_t>(parameters_[i].numel());
    const std::size_t lo = std::max(p_lo, bucket.begin);
    const std::size_t hi = std::min(p_hi, bucket.end);
    if (hi <= lo) continue;
    const Tensor grad = parameters_[i].grad();
    if (!grad.defined()) continue;  // staged zeros, like flatten_gradients
    std::copy_n(grad.data() + (lo - p_lo), hi - lo,
                payload.data() + (lo - bucket.begin));
  }
  InterconnectModel::OverlapEvent event;
  event.kind = kind_;
  event.bytes = payload.size() * sizeof(real);
  event.post_seconds = step_timer_.seconds();
  event.wait_seconds = event.post_seconds;
  event_index_[b] = events_.size();
  events_.push_back(event);
  if (kind_ == CollectiveKind::kAllReduce) {
    handles_[b] = comm_.iall_reduce_sum(rank_, payload);
  } else {
    handles_[b] =
        comm_.ireduce_scatter_counts(rank_, payload, counts_[b], pieces_[b]);
  }
}

void GradBucketer::post_remaining() {
  SGNN_CHECK(active_, "post_remaining() outside a bucketed step");
  // Sweep up parameters the leaf-grad hook never reported: gradients that
  // arrived through checkpointed segments, or parameters with no gradient
  // at all. Their buffers are final once backward() has returned.
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    if (param_done_[i]) continue;
    param_done_[i] = true;
    const auto [first, last] = param_buckets_[i];
    for (std::size_t b = first; b <= last && b < buckets_.size(); ++b) {
      SGNN_CHECK(bucket_pending_[b] > 0, "bucket readiness underflow");
      --bucket_pending_[b];
    }
  }
  post_ready();
  SGNN_CHECK(next_post_ == buckets_.size(),
             "post_remaining left " << buckets_.size() - next_post_
                                    << " buckets unposted");
}

void GradBucketer::wait_bucket(std::size_t b) {
  events_[event_index_[b]].wait_seconds = step_timer_.seconds();
  handles_[b].wait();
  handles_[b] = CollectiveHandle{};
}

void GradBucketer::drain_all_reduce(std::vector<real>& flat_grad) {
  SGNN_CHECK(active_, "drain outside a bucketed step");
  SGNN_CHECK(kind_ == CollectiveKind::kAllReduce,
             "drain_all_reduce on a reduce-scatter bucketer");
  const obs::TraceSpan span("bucket_drain", "collective");
  flat_grad.assign(total_elements_, real{0});
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    wait_bucket(b);
    std::copy(staging_[b].begin(), staging_[b].end(),
              flat_grad.begin() +
                  static_cast<std::ptrdiff_t>(buckets_[b].begin));
  }
}

void GradBucketer::drain_reduce_scatter(std::vector<real>& grad_shard) {
  SGNN_CHECK(active_, "drain outside a bucketed step");
  SGNN_CHECK(kind_ == CollectiveKind::kReduceScatter,
             "drain_reduce_scatter on an all-reduce bucketer");
  const obs::TraceSpan span("bucket_drain", "collective");
  const auto [s, e] =
      Communicator::shard_range(total_elements_, rank_, comm_.num_ranks());
  grad_shard.assign(e - s, real{0});
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    wait_bucket(b);
    // This rank's piece is the intersection of its global shard with the
    // bucket's range; the intersections across buckets tile the shard.
    const std::size_t lo = std::max(s, buckets_[b].begin);
    const std::size_t hi = std::min(e, buckets_[b].end);
    if (hi <= lo) continue;
    SGNN_CHECK(pieces_[b].size() == hi - lo, "shard piece size mismatch");
    std::copy(pieces_[b].begin(), pieces_[b].end(),
              grad_shard.begin() + static_cast<std::ptrdiff_t>(lo - s));
  }
}

void GradBucketer::all_gather_params(const std::vector<real>& param_shard) {
  SGNN_CHECK(active_, "all_gather_params outside a bucketed step");
  SGNN_CHECK(kind_ == CollectiveKind::kReduceScatter,
             "all_gather_params is the ZeRO parameter path");
  const obs::TraceSpan span("bucket_all_gather", "collective");
  const auto [s, e] =
      Communicator::shard_range(total_elements_, rank_, comm_.num_ranks());
  SGNN_CHECK(param_shard.size() == e - s, "param shard size mismatch");

  // Post every bucket's gather first (FIFO), reusing the drained staging
  // buffers: pieces_ carries the updated shard slice out, staging_ receives
  // the rank-order concatenation (== the bucket's slice of the full
  // updated parameter vector).
  const std::size_t first_event = events_.size();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::size_t lo = std::max(s, buckets_[b].begin);
    const std::size_t hi = std::min(e, buckets_[b].end);
    pieces_[b].assign(hi > lo ? hi - lo : 0, real{0});
    if (hi > lo) {
      std::copy_n(param_shard.data() + (lo - s), hi - lo, pieces_[b].data());
    }
    InterconnectModel::OverlapEvent event;
    event.kind = CollectiveKind::kAllGather;
    event.bytes = (buckets_[b].end - buckets_[b].begin) * sizeof(real);
    event.post_seconds = step_timer_.seconds();
    event.wait_seconds = event.post_seconds;
    events_.push_back(event);
    handles_[b] =
        comm_.iall_gather_counts(rank_, pieces_[b], counts_[b], staging_[b]);
  }
  // Drain in order; writing bucket k back into the parameter tensors
  // overlaps the gathers of buckets k+1..B-1.
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    events_[first_event + b].wait_seconds = step_timer_.seconds();
    handles_[b].wait();
    handles_[b] = CollectiveHandle{};
    const Bucket& bucket = buckets_[b];
    SGNN_CHECK(staging_[b].size() == bucket.end - bucket.begin,
               "gathered bucket size mismatch");
    const auto [first, last] = bucket_params_[b];
    for (std::size_t i = first; i <= last; ++i) {
      const std::size_t p_lo = param_offsets_[i];
      const std::size_t p_hi =
          p_lo + static_cast<std::size_t>(parameters_[i].numel());
      const std::size_t lo = std::max(p_lo, bucket.begin);
      const std::size_t hi = std::min(p_hi, bucket.end);
      if (hi <= lo) continue;
      std::copy_n(staging_[b].data() + (lo - bucket.begin), hi - lo,
                  parameters_[i].data() + (lo - p_lo));
    }
  }
  active_ = false;
}

void GradBucketer::end_step() {
  SGNN_CHECK(active_, "end_step() outside a bucketed step");
  active_ = false;
}

std::vector<InterconnectModel::OverlapEvent> GradBucketer::take_events() {
  std::vector<InterconnectModel::OverlapEvent> events;
  events.swap(events_);
  return events;
}

}  // namespace sgnn
