#include "sgnn/train/trainer.hpp"

#include "sgnn/obs/telemetry.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

Trainer::Trainer(EGNNModel& model, const TrainOptions& options)
    : model_(model), options_(options), optimizer_(model.parameters(),
                                                   options.adam) {
  SGNN_CHECK(options.epochs > 0, "epochs must be positive");
}

Trainer::EpochResult Trainer::train_epoch(DataLoader& loader) {
  const WallTimer timer;
  double loss_sum = 0;
  std::int64_t batches = 0;

  loader.begin_epoch();
  EGNNModel::ForwardOptions forward_options;
  forward_options.activation_checkpointing =
      options_.activation_checkpointing;

  const obs::TraceSpan epoch_span("train_epoch", "train");

  while (loader.has_next()) {
    const WallTimer step_timer;
    GraphBatch batch = loader.next();
    if (use_baseline_) baseline_.subtract_from(batch);
    optimizer_.zero_grad();

    double step_loss = 0;
    Tensor total;
    {
      const obs::TraceSpan span("forward", "train");
      const ScopedTrainPhase phase(TrainPhase::kForward);
      const auto out = model_.forward(batch, forward_options);
      LossTerms terms = multitask_loss(out, batch, options_.loss_weights);
      step_loss = terms.total.item();
      loss_sum += step_loss;
      total = terms.total;
    }
    {
      const obs::TraceSpan span("backward", "train");
      const ScopedTrainPhase phase(TrainPhase::kBackward);
      total.backward();
    }
    double grad_norm = 0;
    {
      const obs::TraceSpan span("optimizer", "train");
      const ScopedTrainPhase phase(TrainPhase::kOptimizer);
      if (options_.schedule) {
        optimizer_.set_learning_rate(options_.schedule->at_step(global_step_));
      }
      if (options_.max_grad_norm > 0) {
        grad_norm = clip_grad_norm(model_.parameters(), options_.max_grad_norm);
      } else if (telemetry_ != nullptr) {
        grad_norm = grad_l2_norm(model_.parameters());
      }
      optimizer_.step();
      ++global_step_;
    }

    obs::StepTelemetry step;
    step.step = global_step_ - 1;
    step.epoch = epoch_index_;
    step.loss = step_loss;
    step.grad_norm = grad_norm;
    step.learning_rate = optimizer_.learning_rate();
    step.batch_graphs = batch.num_graphs;
    step.batch_atoms = batch.num_nodes;
    step.batch_edges = batch.num_edges;
    step.step_seconds = step_timer.seconds();
    if (step.step_seconds > 0) {
      step.atoms_per_sec =
          static_cast<double>(step.batch_atoms) / step.step_seconds;
      step.graphs_per_sec =
          static_cast<double>(step.batch_graphs) / step.step_seconds;
    }
    step.live_bytes = MemoryTracker::instance().live().total();
    step.peak_bytes = MemoryTracker::instance().peak_total();
    obs::record_step_metrics(step);
    if (telemetry_ != nullptr) telemetry_->on_step(step);

    ++batches;
  }

  ++epoch_index_;
  EpochResult result;
  result.mean_train_loss =
      batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  result.seconds = timer.seconds();
  return result;
}

std::vector<Trainer::EpochResult> Trainer::fit(DataLoader& loader) {
  std::vector<EpochResult> history;
  double lr = options_.adam.learning_rate;
  for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // A step-based schedule takes precedence over the per-epoch decay.
    if (!options_.schedule) optimizer_.set_learning_rate(lr);
    history.push_back(train_epoch(loader));
    lr *= options_.lr_decay;
  }
  return history;
}

EvalMetrics Trainer::evaluate(const std::vector<const MolecularGraph*>& graphs,
                              std::int64_t batch_size) const {
  SGNN_CHECK(!graphs.empty(), "evaluate on empty set");
  MetricAccumulator accumulator;
  std::size_t cursor = 0;
  while (cursor < graphs.size()) {
    std::vector<const MolecularGraph*> chunk;
    while (cursor < graphs.size() &&
           chunk.size() < static_cast<std::size_t>(batch_size)) {
      chunk.push_back(graphs[cursor++]);
    }
    GraphBatch batch = GraphBatch::from_graphs(chunk);
    if (use_baseline_) baseline_.subtract_from(batch);
    accumulator.add(evaluate_batch(model_, batch, options_.loss_weights));
  }
  return accumulator.mean();
}

}  // namespace sgnn
