#include "sgnn/train/trainer.hpp"

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

Trainer::Trainer(EGNNModel& model, const TrainOptions& options)
    : model_(model), options_(options), optimizer_(model.parameters(),
                                                   options.adam) {
  SGNN_CHECK(options.epochs > 0, "epochs must be positive");
}

Trainer::EpochResult Trainer::train_epoch(DataLoader& loader) {
  const WallTimer timer;
  double loss_sum = 0;
  std::int64_t batches = 0;

  loader.begin_epoch();
  EGNNModel::ForwardOptions forward_options;
  forward_options.activation_checkpointing =
      options_.activation_checkpointing;

  while (loader.has_next()) {
    GraphBatch batch = loader.next();
    if (use_baseline_) baseline_.subtract_from(batch);
    optimizer_.zero_grad();

    Tensor total;
    {
      const ScopedTrainPhase phase(TrainPhase::kForward);
      const auto out = model_.forward(batch, forward_options);
      LossTerms terms = multitask_loss(out, batch, options_.loss_weights);
      loss_sum += terms.total.item();
      total = terms.total;
    }
    {
      const ScopedTrainPhase phase(TrainPhase::kBackward);
      total.backward();
    }
    {
      const ScopedTrainPhase phase(TrainPhase::kOptimizer);
      if (options_.schedule) {
        optimizer_.set_learning_rate(options_.schedule->at_step(global_step_));
      }
      if (options_.max_grad_norm > 0) {
        clip_grad_norm(model_.parameters(), options_.max_grad_norm);
      }
      optimizer_.step();
      ++global_step_;
    }
    ++batches;
  }

  EpochResult result;
  result.mean_train_loss =
      batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  result.seconds = timer.seconds();
  return result;
}

std::vector<Trainer::EpochResult> Trainer::fit(DataLoader& loader) {
  std::vector<EpochResult> history;
  double lr = options_.adam.learning_rate;
  for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // A step-based schedule takes precedence over the per-epoch decay.
    if (!options_.schedule) optimizer_.set_learning_rate(lr);
    history.push_back(train_epoch(loader));
    lr *= options_.lr_decay;
  }
  return history;
}

EvalMetrics Trainer::evaluate(const std::vector<const MolecularGraph*>& graphs,
                              std::int64_t batch_size) const {
  SGNN_CHECK(!graphs.empty(), "evaluate on empty set");
  MetricAccumulator accumulator;
  std::size_t cursor = 0;
  while (cursor < graphs.size()) {
    std::vector<const MolecularGraph*> chunk;
    while (cursor < graphs.size() &&
           chunk.size() < static_cast<std::size_t>(batch_size)) {
      chunk.push_back(graphs[cursor++]);
    }
    GraphBatch batch = GraphBatch::from_graphs(chunk);
    if (use_baseline_) baseline_.subtract_from(batch);
    accumulator.add(evaluate_batch(model_, batch, options_.loss_weights));
  }
  return accumulator.mean();
}

}  // namespace sgnn
