#include "sgnn/train/trainer.hpp"

#include "sgnn/nn/model_io.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/zero.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

Trainer::Trainer(EGNNModel& model, const TrainOptions& options)
    : model_(model),
      options_(options),
      optimizer_(model.parameters(), options.adam),
      loss_scaler_(options.loss_scaling) {
  SGNN_CHECK(options.epochs > 0, "epochs must be positive");
  SGNN_CHECK(options.checkpoint.every_steps <= 0 ||
                 !options.checkpoint.directory.empty(),
             "checkpoint.every_steps needs checkpoint.directory");
}

std::string Trainer::build_snapshot(const DataLoader& loader) {
  ckpt::SnapshotBuilder builder;
  builder.add_bytes("meta.kind", "trainer");
  builder.add_i64("meta.step", global_step_);
  builder.add_i64("meta.epoch", epoch_index_);
  builder.add_bytes("model", model_payload_bytes(model_));
  builder.add_i64("optim.timestep", optimizer_.timestep());
  builder.add_f64("optim.lr", optimizer_.learning_rate());
  const std::vector<real> m = flatten_parameters(optimizer_.moment1());
  const std::vector<real> v = flatten_parameters(optimizer_.moment2());
  builder.add_reals("optim.m", m.data(), m.size());
  builder.add_reals("optim.v", v.data(), v.size());
  const DataLoader::State loader_state = loader.state();
  builder.add_bytes("loader.rng", ckpt::pod_bytes(loader_state.rng));
  builder.add_u64s("loader.order", loader_state.order);
  builder.add_u64("loader.cursor", loader_state.cursor);
  return builder.payload();
}

void Trainer::maybe_checkpoint(const DataLoader& loader) {
  const auto& copt = options_.checkpoint;
  if (copt.every_steps <= 0) return;
  if (global_step_ % copt.every_steps != 0) return;
  if (!ckpt_manager_) {
    ckpt_manager_.emplace(copt.directory, copt.keep_last);
  }
  ckpt_manager_->save(static_cast<std::uint64_t>(global_step_),
                      build_snapshot(loader));
}

bool Trainer::try_resume(DataLoader& loader) {
  if (options_.checkpoint.resume_from.empty()) return false;
  const auto loaded =
      ckpt::CheckpointManager::load_latest(options_.checkpoint.resume_from);
  if (!loaded) {
    SGNN_LOG_WARN << "no readable checkpoint under '"
                  << options_.checkpoint.resume_from << "'; starting fresh";
    return false;
  }
  const ckpt::SnapshotView view(loaded->payload);
  SGNN_CHECK(view.bytes("meta.kind") == "trainer",
             "snapshot '" << loaded->path << "' is not a trainer checkpoint");
  load_model_payload(model_, view.bytes("model"));
  optimizer_.set_timestep(view.i64("optim.timestep"));
  optimizer_.set_learning_rate(view.f64("optim.lr"));
  std::vector<real> m = view.reals("optim.m");
  std::vector<real> v = view.reals("optim.v");
  unflatten_into_parameters(m, optimizer_.moment1());
  unflatten_into_parameters(v, optimizer_.moment2());
  DataLoader::State loader_state;
  loader_state.rng = ckpt::pod_from_bytes<Rng::State>(view.bytes("loader.rng"));
  loader_state.order = view.u64s("loader.order");
  loader_state.cursor = view.u64("loader.cursor");
  loader.restore_state(loader_state);
  global_step_ = view.i64("meta.step");
  epoch_index_ = view.i64("meta.epoch");
  skip_begin_epoch_ = true;
  SGNN_LOG_INFO << "resumed trainer from " << loaded->path << " (step "
                << global_step_ << ", epoch " << epoch_index_ << ")";
  return true;
}

Trainer::EpochResult Trainer::train_epoch(DataLoader& loader) {
  const WallTimer timer;
  double loss_sum = 0;
  std::int64_t batches = 0;

  if (skip_begin_epoch_) {
    // First epoch after a resume: the loader already sits at the restored
    // mid-epoch position; reshuffling would diverge from the original run.
    skip_begin_epoch_ = false;
  } else {
    loader.begin_epoch();
  }
  EGNNModel::ForwardOptions forward_options;
  forward_options.activation_checkpointing =
      options_.activation_checkpointing;

  const obs::TraceSpan epoch_span("train_epoch", "train");

  while (loader.has_next()) {
    const WallTimer step_timer;
    const obs::prof::Totals prof_before = obs::prof::totals();
    const obs::prof::ProfRegion step_region("train_step");
    GraphBatch batch = loader.next();
    if (use_baseline_) baseline_.subtract_from(batch);
    optimizer_.zero_grad();

    double step_loss = 0;
    Tensor total;
    {
      const obs::TraceSpan span("forward", "train");
      const obs::prof::ProfRegion region("forward");
      const ScopedTrainPhase phase(TrainPhase::kForward);
      const auto out = model_.forward(batch, forward_options);
      LossTerms terms = multitask_loss(out, batch, options_.loss_weights);
      // The reported loss stays unscaled; only the backward graph sees the
      // loss-scale factor.
      step_loss = terms.total.item();
      loss_sum += step_loss;
      total = loss_scaler_.enabled()
                  ? scale(terms.total,
                          static_cast<real>(loss_scaler_.scale()))
                  : terms.total;
    }
    {
      const obs::TraceSpan span("backward", "train");
      const obs::prof::ProfRegion region("backward");
      const ScopedTrainPhase phase(TrainPhase::kBackward);
      total.backward();
    }
    double grad_norm = 0;
    {
      const obs::TraceSpan span("optimizer", "train");
      const obs::prof::ProfRegion region("optimizer");
      const ScopedTrainPhase phase(TrainPhase::kOptimizer);
      if (options_.schedule) {
        optimizer_.set_learning_rate(options_.schedule->at_step(global_step_));
      }
      const bool overflowed =
          loss_scaler_.enabled() &&
          LossScaler::grads_overflowed(model_.parameters());
      if (loss_scaler_.update(overflowed)) {
        loss_scaler_.unscale(model_.parameters());
        if (options_.max_grad_norm > 0) {
          grad_norm =
              clip_grad_norm(model_.parameters(), options_.max_grad_norm);
        } else if (telemetry_ != nullptr) {
          grad_norm = grad_l2_norm(model_.parameters());
        }
        optimizer_.step();
      } else {
        // Overflow: skip the parameter update, keep the step count moving
        // (AMP semantics) so schedules and checkpoints stay aligned.
        SGNN_LOG_DEBUG << "step " << global_step_
                       << ": non-finite gradients, optimizer step skipped";
      }
      ++global_step_;
    }

    obs::StepTelemetry step;
    step.step = global_step_ - 1;
    step.epoch = epoch_index_;
    step.loss = step_loss;
    step.grad_norm = grad_norm;
    step.learning_rate = optimizer_.learning_rate();
    step.batch_graphs = batch.num_graphs;
    step.batch_atoms = batch.num_nodes;
    step.batch_edges = batch.num_edges;
    step.step_seconds = step_timer.seconds();
    if (step.step_seconds > 0) {
      step.atoms_per_sec =
          static_cast<double>(step.batch_atoms) / step.step_seconds;
      step.graphs_per_sec =
          static_cast<double>(step.batch_graphs) / step.step_seconds;
    }
    step.live_bytes = MemoryTracker::instance().live().total();
    step.peak_bytes = MemoryTracker::instance().peak_total();
    const obs::prof::Totals prof_after = obs::prof::totals();
    step.kernel_seconds = prof_after.kernel_seconds - prof_before.kernel_seconds;
    step.kernel_flops = prof_after.flops - prof_before.flops;
    step.kernel_bytes = prof_after.bytes - prof_before.bytes;
    step.kernel_backend = kernels::backend_name(kernels::active_backend());
    step.compute_dtype = kernels::dtype_name(kernels::active_compute_dtype());
    obs::record_step_metrics(step);
    if (telemetry_ != nullptr) telemetry_->on_step(step);

    ++batches;
    maybe_checkpoint(loader);
    ckpt::maybe_crash(options_.checkpoint, global_step_);
  }

  ++epoch_index_;
  EpochResult result;
  result.mean_train_loss =
      batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  result.seconds = timer.seconds();
  return result;
}

std::vector<Trainer::EpochResult> Trainer::fit(DataLoader& loader) {
  try_resume(loader);
  std::vector<EpochResult> history;
  // Replay the per-epoch decay up to the resume point by repeated
  // multiplication — the same float sequence the original run produced
  // (pow() could differ in the last bit, breaking bit-identical resume).
  double lr = options_.adam.learning_rate;
  for (std::int64_t epoch = 0; epoch < epoch_index_; ++epoch) {
    lr *= options_.lr_decay;
  }
  for (std::int64_t epoch = epoch_index_; epoch < options_.epochs; ++epoch) {
    // A step-based schedule takes precedence over the per-epoch decay.
    if (!options_.schedule) optimizer_.set_learning_rate(lr);
    history.push_back(train_epoch(loader));
    lr *= options_.lr_decay;
  }
  return history;
}

EvalMetrics Trainer::evaluate(const std::vector<const MolecularGraph*>& graphs,
                              std::int64_t batch_size) const {
  SGNN_CHECK(!graphs.empty(), "evaluate on empty set");
  MetricAccumulator accumulator;
  std::size_t cursor = 0;
  while (cursor < graphs.size()) {
    std::vector<const MolecularGraph*> chunk;
    while (cursor < graphs.size() &&
           chunk.size() < static_cast<std::size_t>(batch_size)) {
      chunk.push_back(graphs[cursor++]);
    }
    GraphBatch batch = GraphBatch::from_graphs(chunk);
    if (use_baseline_) baseline_.subtract_from(batch);
    accumulator.add(evaluate_batch(model_, batch, options_.loss_weights));
  }
  return accumulator.mean();
}

}  // namespace sgnn
