#include "sgnn/train/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "sgnn/graph/batch.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/schedule.hpp"
#include "sgnn/train/zero.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

const char* dist_strategy_name(DistStrategy strategy) {
  switch (strategy) {
    case DistStrategy::kDDP: return "DDP (all-reduce)";
    case DistStrategy::kZeRO1: return "ZeRO-1 (sharded optimizer)";
  }
  return "?";
}

DistributedTrainer::DistributedTrainer(const ModelConfig& config,
                                       const DistTrainOptions& options)
    : options_(options) {
  SGNN_CHECK(options.num_ranks > 0, "need at least one rank");
  SGNN_CHECK(options.epochs > 0, "epochs must be positive");
  for (int r = 0; r < options.num_ranks; ++r) {
    replicas_.push_back(std::make_unique<EGNNModel>(config));
  }
  // Same seed means same init already, but copying makes the invariant
  // explicit and robust to config changes.
  for (int r = 1; r < options.num_ranks; ++r) {
    replicas_[static_cast<std::size_t>(r)]->copy_parameters_from(
        *replicas_.front());
  }
}

double DistributedTrainer::replica_divergence() const {
  double worst = 0;
  const auto reference = replicas_.front()->parameters();
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    const auto params = replicas_[r]->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const real* a = reference[i].data();
      const real* b = params[i].data();
      for (std::int64_t k = 0; k < params[i].numel(); ++k) {
        worst = std::max(worst, std::abs(static_cast<double>(a[k] - b[k])));
      }
    }
  }
  return worst;
}

DistTrainReport DistributedTrainer::train(const DDStore& store) {
  const int R = options_.num_ranks;
  SGNN_CHECK(store.num_ranks() == R,
             "DDStore was sharded for " << store.num_ranks() << " ranks, "
                                        << "trainer has " << R);
  SGNN_CHECK(store.size() >= R, "fewer samples than ranks");

  Communicator comm(R);
  MemoryTracker::instance().reset_peak();

  // Per-rank optimizers (constructed up front so optimizer-state memory is
  // part of the profile from step zero, as in a real framework).
  std::vector<std::unique_ptr<DDPAdam>> ddp;
  std::vector<std::unique_ptr<ZeroAdam>> zero;
  for (int r = 0; r < R; ++r) {
    auto params = replicas_[static_cast<std::size_t>(r)]->parameters();
    if (options_.strategy == DistStrategy::kDDP) {
      ddp.push_back(
          std::make_unique<DDPAdam>(comm, std::move(params), options_.adam));
    } else {
      zero.push_back(
          std::make_unique<ZeroAdam>(comm, std::move(params), options_.adam));
    }
  }

  // Steps per epoch: every rank must execute the same number of collective
  // steps, so the per-epoch sample count is truncated to a multiple of
  // R * batch.
  const std::int64_t global_batch =
      static_cast<std::int64_t>(R) * options_.per_rank_batch_size;
  const std::int64_t steps_per_epoch = store.size() / global_batch;
  SGNN_CHECK(steps_per_epoch > 0, "dataset smaller than one global batch");

  std::vector<double> rank_loss(static_cast<std::size_t>(R), 0.0);
  std::vector<double> rank_seconds(static_cast<std::size_t>(R), 0.0);

  const auto worker = [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    // Tags spans and log lines from this thread with the rank, so the
    // exported trace renders one timeline per simulated GPU.
    const obs::ScopedTraceRank trace_rank(rank);
    EGNNModel& model = *replicas_[ri];
    EGNNModel::ForwardOptions forward_options;
    forward_options.activation_checkpointing =
        options_.activation_checkpointing;
    Rng sampler(options_.sampler_seed);  // identical on every rank
    const WallTimer timer;
    double loss_sum = 0;
    std::int64_t counted_steps = 0;

    for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
      // Shared shuffled order; rank r takes the r-th stride (the standard
      // distributed sampler). All ranks draw the same permutation because
      // the sampler RNG is seeded identically.
      std::vector<std::int64_t> order(
          static_cast<std::size_t>(store.size()));
      std::iota(order.begin(), order.end(), 0);
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[sampler.uniform_index(i)]);
      }

      for (std::int64_t step = 0; step < steps_per_epoch; ++step) {
        const WallTimer step_timer;
        std::vector<const MolecularGraph*> samples;
        {
          const obs::TraceSpan span("fetch_batch", "data");
          for (std::int64_t b = 0; b < options_.per_rank_batch_size; ++b) {
            const std::int64_t position =
                step * global_batch + b * R + rank;
            samples.push_back(&store.fetch(
                rank, order[static_cast<std::size_t>(position)]));
          }
        }
        const GraphBatch batch = GraphBatch::from_graphs(samples);

        if (options_.strategy == DistStrategy::kDDP) {
          ddp[ri]->zero_grad();
        } else {
          zero[ri]->zero_grad();
        }
        double step_loss = 0;
        Tensor total;
        {
          const obs::TraceSpan span("forward", "train");
          const ScopedTrainPhase phase(TrainPhase::kForward);
          const auto out = model.forward(batch, forward_options);
          const LossTerms terms =
              multitask_loss(out, batch, options_.loss_weights);
          step_loss = terms.total.item();
          loss_sum += step_loss;
          total = terms.total;
        }
        {
          const obs::TraceSpan span("backward", "train");
          const ScopedTrainPhase phase(TrainPhase::kBackward);
          total.backward();
        }
        double grad_norm = 0;
        // Collective payload attributed to this step; the counters are
        // updated once per collective (by rank 0 inside the call), so the
        // delta is exact on rank 0 and reported as 0 elsewhere.
        const Communicator::Traffic traffic_before =
            rank == 0 ? comm.traffic() : Communicator::Traffic{};
        {
          const obs::TraceSpan span("optimizer", "train");
          const ScopedTrainPhase phase(TrainPhase::kOptimizer);
          if (options_.telemetry != nullptr) {
            grad_norm = grad_l2_norm(model.parameters());
          }
          if (options_.strategy == DistStrategy::kDDP) {
            ddp[ri]->step(rank);
          } else {
            zero[ri]->step(rank);
          }
        }

        obs::StepTelemetry telemetry;
        telemetry.step = counted_steps;
        telemetry.epoch = epoch;
        telemetry.rank = rank;
        telemetry.loss = step_loss;
        telemetry.grad_norm = grad_norm;
        telemetry.learning_rate = options_.adam.learning_rate;
        telemetry.batch_graphs = batch.num_graphs;
        telemetry.batch_atoms = batch.num_nodes;
        telemetry.batch_edges = batch.num_edges;
        telemetry.step_seconds = step_timer.seconds();
        if (telemetry.step_seconds > 0) {
          telemetry.atoms_per_sec =
              static_cast<double>(telemetry.batch_atoms) /
              telemetry.step_seconds;
          telemetry.graphs_per_sec =
              static_cast<double>(telemetry.batch_graphs) /
              telemetry.step_seconds;
        }
        if (rank == 0) {
          const Communicator::Traffic traffic = comm.traffic();
          telemetry.collective_bytes =
              traffic.total_bytes() - traffic_before.total_bytes();
          telemetry.comm_seconds_modeled =
              interconnect_.all_reduce_seconds(
                  traffic.all_reduce_bytes - traffic_before.all_reduce_bytes,
                  R) +
              interconnect_.reduce_scatter_seconds(
                  traffic.reduce_scatter_bytes -
                      traffic_before.reduce_scatter_bytes,
                  R) +
              interconnect_.all_gather_seconds(
                  traffic.all_gather_bytes - traffic_before.all_gather_bytes,
                  R) +
              interconnect_.broadcast_seconds(
                  traffic.broadcast_bytes - traffic_before.broadcast_bytes, R);
        }
        telemetry.live_bytes = MemoryTracker::instance().live().total();
        telemetry.peak_bytes = MemoryTracker::instance().peak_total();
        obs::record_step_metrics(telemetry);
        if (options_.telemetry != nullptr) {
          options_.telemetry->on_step(telemetry);
        }
        ++counted_steps;
      }
    }
    rank_loss[ri] = loss_sum / static_cast<double>(counted_steps);
    rank_seconds[ri] = timer.seconds();
  };

  // sgnn-lint: allow(thread): the multi-rank driver runs one OS thread per
  // simulated rank by design; worker parallelism inside each rank still
  // goes through the shared ThreadPool.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    threads.emplace_back(worker, r);
  }
  for (auto& t : threads) t.join();

  SGNN_CHECK(replica_divergence() == 0.0,
             "replicas diverged — gradient synchronization is broken");

  DistTrainReport report;
  report.steps = options_.epochs * steps_per_epoch;
  report.final_train_loss =
      std::accumulate(rank_loss.begin(), rank_loss.end(), 0.0) / R;
  report.compute_seconds =
      *std::max_element(rank_seconds.begin(), rank_seconds.end());
  report.collective_traffic = comm.traffic();
  report.data_traffic = store.stats();
  report.peak_memory = MemoryTracker::instance().peak();
  report.peak_phase = MemoryTracker::instance().peak_phase();
  report.peak_forward =
      MemoryTracker::instance().peak_during(TrainPhase::kForward);
  report.peak_backward =
      MemoryTracker::instance().peak_during(TrainPhase::kBackward);
  report.peak_optimizer =
      MemoryTracker::instance().peak_during(TrainPhase::kOptimizer);

  // Interconnect time from the recorded payload volumes. The bandwidth term
  // is exact for aggregated payloads; the per-step launch latency (a few
  // microseconds per collective) is added separately.
  const auto& traffic = report.collective_traffic;
  report.comm_seconds =
      interconnect_.all_reduce_seconds(traffic.all_reduce_bytes, R) +
      interconnect_.reduce_scatter_seconds(traffic.reduce_scatter_bytes, R) +
      interconnect_.all_gather_seconds(traffic.all_gather_bytes, R) +
      interconnect_.broadcast_seconds(traffic.broadcast_bytes, R) +
      (R > 1 ? static_cast<double>(traffic.collective_calls) *
                   interconnect_.latency_seconds
             : 0.0);
  return report;
}

}  // namespace sgnn
