#include "sgnn/train/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <numeric>
#include <optional>
#include <thread>

#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/partition.hpp"
#include "sgnn/nn/model_io.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/halo.hpp"
#include "sgnn/train/schedule.hpp"
#include "sgnn/train/zero.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/rng.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

namespace {

/// Restores a flat optimizer-state section into a moment tensor.
void restore_tensor(const std::vector<real>& flat, Tensor& dst) {
  SGNN_CHECK(static_cast<std::int64_t>(flat.size()) == dst.numel(),
             "optimizer-state section holds " << flat.size()
                                              << " values, tensor expects "
                                              << dst.numel());
  std::copy(flat.begin(), flat.end(), dst.data());
}

/// Flattens a plain Adam's per-parameter moment list into one contiguous
/// checkpoint section, in parameter order.
std::vector<real> flatten_moments(const std::vector<Tensor>& moments) {
  std::vector<real> flat;
  for (const Tensor& t : moments) {
    flat.insert(flat.end(), t.data(), t.data() + t.numel());
  }
  return flat;
}

/// Restores a flattened moment section back into per-parameter tensors.
void restore_moments(const std::vector<real>& flat,
                     std::vector<Tensor>& moments) {
  std::size_t offset = 0;
  for (Tensor& t : moments) {
    const auto count = static_cast<std::size_t>(t.numel());
    SGNN_CHECK(offset + count <= flat.size(),
               "optimizer-state section is too short: needs more than "
                   << flat.size() << " values");
    std::copy_n(flat.data() + offset, count, t.data());
    offset += count;
  }
  SGNN_CHECK(offset == flat.size(),
             "optimizer-state section holds "
                 << flat.size() << " values, the moment list expects "
                 << offset);
}

}  // namespace

const char* dist_strategy_name(DistStrategy strategy) {
  switch (strategy) {
    case DistStrategy::kDDP: return "DDP (all-reduce)";
    case DistStrategy::kZeRO1: return "ZeRO-1 (sharded optimizer)";
  }
  return "?";
}

DistributedTrainer::DistributedTrainer(const ModelConfig& config,
                                       const DistTrainOptions& options)
    : options_(options) {
  SGNN_CHECK(options.num_ranks > 0, "need at least one rank");
  SGNN_CHECK(options.epochs > 0, "epochs must be positive");
  for (int r = 0; r < options.num_ranks; ++r) {
    replicas_.push_back(std::make_unique<EGNNModel>(config));
  }
  // Same seed means same init already, but copying makes the invariant
  // explicit and robust to config changes.
  for (int r = 1; r < options.num_ranks; ++r) {
    replicas_[static_cast<std::size_t>(r)]->copy_parameters_from(
        *replicas_.front());
  }
}

double DistributedTrainer::replica_divergence() const {
  double worst = 0;
  const auto reference = replicas_.front()->parameters();
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    const auto params = replicas_[r]->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const real* a = reference[i].data();
      const real* b = params[i].data();
      for (std::int64_t k = 0; k < params[i].numel(); ++k) {
        worst = std::max(worst, std::abs(static_cast<double>(a[k] - b[k])));
      }
    }
  }
  return worst;
}

DistTrainReport DistributedTrainer::train(const DDStore& store) {
  const int R = options_.num_ranks;
  SGNN_CHECK(store.num_ranks() == R,
             "DDStore was sharded for " << store.num_ranks() << " ranks, "
                                        << "trainer has " << R);
  SGNN_CHECK(store.size() >= R, "fewer samples than ranks");

  const bool gp = options_.graph_parallel;
  if (gp) {
    // The bit-identity proof (docs/graph-parallelism.md) covers the kDDP
    // layout with replicated plain-Adam state, float64 compute, and no
    // gradient clipping; anything else fails loudly instead of silently
    // breaking the parity contract.
    SGNN_CHECK(options_.strategy == DistStrategy::kDDP,
               "graph_parallel requires the kDDP strategy (ZeRO shards "
               "optimizer state; graph-parallel ranks replicate it)");
    SGNN_CHECK(kernels::active_compute_dtype() ==
                   kernels::ComputeDtype::kFloat64,
               "graph_parallel bit-identity is proven for float64 compute "
               "only");
    SGNN_CHECK(options_.max_grad_norm == 0.0,
               "graph_parallel does not support gradient clipping");
  }

  Communicator comm(R);
  MemoryTracker::instance().reset_peak();

  // Per-rank optimizers (constructed up front so optimizer-state memory is
  // part of the profile from step zero, as in a real framework). The
  // graph-parallel mode uses PLAIN per-rank Adam: its gradients are already
  // replicated exactly, and a DDP all-reduce-then-average of R identical
  // gradients is NOT a bitwise no-op (g + g + g rounds), so averaging would
  // break the parity contract.
  std::vector<std::unique_ptr<DDPAdam>> ddp;
  std::vector<std::unique_ptr<ZeroAdam>> zero;
  std::vector<std::unique_ptr<Adam>> gpadam;
  for (int r = 0; r < R; ++r) {
    auto params = replicas_[static_cast<std::size_t>(r)]->parameters();
    if (gp) {
      gpadam.push_back(
          std::make_unique<Adam>(std::move(params), options_.adam));
    } else if (options_.strategy == DistStrategy::kDDP) {
      ddp.push_back(std::make_unique<DDPAdam>(comm, std::move(params),
                                              options_.adam,
                                              options_.bucket_bytes));
      ddp.back()->set_max_grad_norm(options_.max_grad_norm);
    } else {
      zero.push_back(std::make_unique<ZeroAdam>(comm, std::move(params),
                                                options_.adam, /*stage=*/1,
                                                options_.bucket_bytes));
      zero.back()->set_max_grad_norm(options_.max_grad_norm);
    }
  }

  // Steps per epoch: every rank must execute the same number of collective
  // steps, so the per-epoch sample count is truncated to a multiple of
  // R * batch. Graph-parallel ranks cooperate on ONE shared batch per
  // step, so there the global batch is per_rank_batch_size itself.
  const std::int64_t global_batch =
      gp ? options_.per_rank_batch_size
         : static_cast<std::int64_t>(R) * options_.per_rank_batch_size;
  const std::int64_t steps_per_epoch = store.size() / global_batch;
  SGNN_CHECK(steps_per_epoch > 0, "dataset smaller than one global batch");

  const auto& copt = options_.checkpoint;
  SGNN_CHECK(copt.every_steps <= 0 || !copt.directory.empty(),
             "checkpoint.every_steps needs checkpoint.directory");
  std::optional<ckpt::CheckpointManager> manager;
  if (copt.every_steps > 0) manager.emplace(copt.directory, copt.keep_last);

  // Resume (single-threaded, before the rank threads exist). The snapshot
  // stores the position of the NEXT step to run — (epoch, epoch_step) —
  // plus the sampler state from which that epoch's permutation can be
  // re-derived by re-shuffling.
  std::int64_t start_epoch = 0;
  std::int64_t start_step = 0;
  std::int64_t start_counted = 0;
  Rng initial_sampler(options_.sampler_seed);
  if (!copt.resume_from.empty()) {
    const auto loaded = ckpt::CheckpointManager::load_latest(copt.resume_from);
    if (!loaded) {
      SGNN_LOG_WARN << "no readable checkpoint under '" << copt.resume_from
                    << "'; starting fresh";
    } else {
      const ckpt::SnapshotView view(loaded->payload);
      // Graph-parallel runs write a distinct kind: their optimizer layout
      // (flattened plain-Adam moments) is not interchangeable with the
      // DDP/ZeRO sections, so cross-mode resumes fail here, loudly.
      const std::string expected_kind = gp ? "dist.gpar" : "dist";
      SGNN_CHECK(view.bytes("meta.kind") == expected_kind,
                 "snapshot '" << loaded->path << "' is not a "
                              << (gp ? "graph-parallel" : "data-parallel")
                              << " distributed checkpoint");
      SGNN_CHECK(view.i64("meta.ranks") == R,
                 "checkpoint was written for " << view.i64("meta.ranks")
                                              << " ranks, trainer has " << R);
      SGNN_CHECK(view.i64("meta.strategy") ==
                     static_cast<std::int64_t>(options_.strategy),
                 "checkpoint strategy does not match trainer strategy");
      load_model_payload(*replicas_.front(), view.bytes("model"));
      for (int r = 1; r < R; ++r) {
        replicas_[static_cast<std::size_t>(r)]->copy_parameters_from(
            *replicas_.front());
      }
      const std::int64_t timestep = view.i64("optim.timestep");
      const double lr = view.f64("optim.lr");
      for (int r = 0; r < R; ++r) {
        const auto rr = static_cast<std::size_t>(r);
        if (gp) {
          // Replicated plain-Adam state: every rank restores the same
          // flattened moments, unpacked back into per-parameter tensors.
          restore_moments(view.reals("optim.m"), gpadam[rr]->moment1());
          restore_moments(view.reals("optim.v"), gpadam[rr]->moment2());
          gpadam[rr]->set_timestep(timestep);
          gpadam[rr]->set_learning_rate(lr);
        } else if (options_.strategy == DistStrategy::kDDP) {
          // Replicated Adam state: every rank restores the same moments.
          restore_tensor(view.reals("optim.m"), ddp[rr]->moment1());
          restore_tensor(view.reals("optim.v"), ddp[rr]->moment2());
          ddp[rr]->set_timestep(timestep);
          ddp[rr]->set_learning_rate(lr);
        } else {
          // Sharded Adam state: rank r restores only its own shard.
          const std::string suffix = "." + std::to_string(r);
          restore_tensor(view.reals("optim.m" + suffix), zero[rr]->moment1());
          restore_tensor(view.reals("optim.v" + suffix), zero[rr]->moment2());
          zero[rr]->set_timestep(timestep);
          zero[rr]->set_learning_rate(lr);
        }
      }
      initial_sampler.set_state(
          ckpt::pod_from_bytes<Rng::State>(view.bytes("sampler.rng")));
      start_epoch = view.i64("meta.epoch");
      start_step = view.i64("meta.epoch_step");
      start_counted = view.i64("meta.step");
      SGNN_LOG_INFO << "resumed distributed run from " << loaded->path
                    << " (step " << start_counted << ", epoch " << start_epoch
                    << ", epoch step " << start_step << ")";
    }
  }
  const Rng::State sampler_start = initial_sampler.state();

  std::vector<double> rank_loss(static_cast<std::size_t>(R), 0.0);
  std::vector<double> rank_seconds(static_cast<std::size_t>(R), 0.0);
  // Overlap accounting, written only by the rank-0 worker (the thread join
  // below publishes it to this thread).
  double exposed_seconds_total = 0;
  double overlapped_seconds_total = 0;
  std::int64_t buckets_total = 0;
  std::uint64_t halo_bytes_total = 0;
  std::int64_t halo_exchanges_total = 0;
  double halo_exposed_total = 0;
  double halo_overlapped_total = 0;

  const auto worker = [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    // Tags spans and log lines from this thread with the rank, so the
    // exported trace renders one timeline per simulated GPU.
    const obs::ScopedTraceRank trace_rank(rank);
    EGNNModel& model = *replicas_[ri];
    EGNNModel::ForwardOptions forward_options;
    forward_options.activation_checkpointing =
        options_.activation_checkpointing;
    Rng sampler(options_.sampler_seed);
    sampler.set_state(sampler_start);  // identical on every rank
    const WallTimer timer;
    double loss_sum = 0;
    std::int64_t counted_steps = start_counted;
    std::int64_t local_steps = 0;

    GradBucketer* const bucketer =
        gp ? nullptr
           : (options_.strategy == DistStrategy::kDDP ? ddp[ri]->bucketer()
                                                      : zero[ri]->bucketer());
    if (!gp && copt.crash_in_overlap_step > 0) {
      // Crash-during-overlap fault injection: fires inside the optimizer
      // step, after every bucket is posted and before any drain. All ranks
      // run the same step count, so every rank throws together and the
      // progress engine can still complete the (symmetric) posted ops.
      const auto crash_in_overlap = [&counted_steps, &copt] {
        if (counted_steps + 1 == copt.crash_in_overlap_step) {
          throw ckpt::SimulatedCrash(counted_steps);
        }
      };
      if (options_.strategy == DistStrategy::kDDP) {
        ddp[ri]->set_pre_drain_hook(crash_in_overlap);
      } else {
        zero[ri]->set_pre_drain_hook(crash_in_overlap);
      }
    }

    for (std::int64_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
      // Pre-shuffle sampler state: a mid-epoch checkpoint stores it so a
      // resume can re-derive this epoch's permutation by re-shuffling.
      const Rng::State epoch_start_state = sampler.state();
      // Shared shuffled order; rank r takes the r-th stride (the standard
      // distributed sampler). All ranks draw the same permutation because
      // the sampler RNG is seeded identically.
      std::vector<std::int64_t> order(
          static_cast<std::size_t>(store.size()));
      std::iota(order.begin(), order.end(), 0);
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[sampler.uniform_index(i)]);
      }

      const std::int64_t first_step = epoch == start_epoch ? start_step : 0;
      for (std::int64_t step = first_step; step < steps_per_epoch; ++step) {
        const WallTimer step_timer;
        // Kernel-profile snapshot, rank 0 only: prof::totals() aggregates
        // across every rank thread, so the per-step delta is process-wide
        // (all R ranks' kernels), mirroring the comm accounting below.
        const obs::prof::Totals prof_before =
            rank == 0 ? obs::prof::totals() : obs::prof::Totals{};
        const obs::prof::ProfRegion step_region("train_step");
        std::vector<const MolecularGraph*> samples;
        {
          const obs::TraceSpan span("fetch_batch", "data");
          for (std::int64_t b = 0; b < options_.per_rank_batch_size; ++b) {
            // Graph-parallel ranks fetch the SAME samples (they cooperate
            // on one shared batch); the replicated strategies stride by
            // rank through the shared permutation.
            const std::int64_t position =
                step * global_batch + (gp ? b : b * R + rank);
            samples.push_back(&store.fetch(
                rank, order[static_cast<std::size_t>(position)]));
          }
        }
        const GraphBatch batch = GraphBatch::from_graphs(samples);

        if (gp) {
          gpadam[ri]->zero_grad();
        } else if (options_.strategy == DistStrategy::kDDP) {
          ddp[ri]->zero_grad();
        } else {
          zero[ri]->zero_grad();
        }

        // Graph-parallel: partition the shared batch and stand up this
        // step's halo exchanger. Its buffers belong to in-flight
        // collectives, so it must outlive backward — it lives to the end
        // of the step iteration.
        std::optional<gpar::GraphPartition> partition;
        std::optional<gpar::HaloExchanger> halo;
        // The halo collectives post during FORWARD, so the graph-parallel
        // traffic snapshot sits ahead of it; the replicated strategies
        // snapshot after forward instead (see the comment below).
        Communicator::Traffic traffic_before;
        if (gp) {
          partition.emplace(gpar::GraphPartition::build(batch, R));
          halo.emplace(comm, rank, *partition, batch);
          forward_options.graph_parallel = &*halo;
          if (copt.crash_in_overlap_step > 0) {
            // Crash INSIDE the halo-exchange window: fires after the
            // boundary gathers are posted and before the first wait. All
            // ranks run the same step count, so every rank throws together
            // and the exchanger destructors drain the symmetric posted ops.
            halo->set_pre_wait_hook([&counted_steps, &copt] {
              if (counted_steps + 1 == copt.crash_in_overlap_step) {
                throw ckpt::SimulatedCrash(counted_steps);
              }
            });
          }
          if (rank == 0) traffic_before = comm.traffic();
        }
        double step_loss = 0;
        Tensor total;
        {
          const obs::TraceSpan span("forward", "train");
          const obs::prof::ProfRegion region("forward");
          const ScopedTrainPhase phase(TrainPhase::kForward);
          const auto out = model.forward(batch, forward_options);
          const LossTerms terms =
              multitask_loss(out, batch, options_.loss_weights);
          step_loss = terms.total.item();
          loss_sum += step_loss;
          total = terms.total;
        }
        // Collective payload attributed to this step. The replicated
        // strategies snapshot here — BEFORE backward — because the
        // overlapped path posts (and the progress engine counts) bucket
        // collectives mid-backward; the drain inside the optimizer step
        // completes before the closing snapshot, so the delta captures
        // every bucket exactly once. The counters are updated once per
        // collective (by rank 0 or the engine), so the delta is exact on
        // rank 0 and reported 0 elsewhere.
        if (rank == 0 && !gp) traffic_before = comm.traffic();
        {
          const obs::TraceSpan span("backward", "train");
          const obs::prof::ProfRegion region("backward");
          const ScopedTrainPhase phase(TrainPhase::kBackward);
          // Arm the bucketer and observe leaf-gradient completion: each
          // bucket's collective is posted the moment its last gradient is
          // produced, overlapping communication with the rest of backward.
          std::optional<autograd::ScopedLeafGradHook> grad_hook;
          if (bucketer != nullptr) {
            bucketer->begin_step(rank);
            grad_hook.emplace(
                [bucketer](const void* leaf) { bucketer->on_leaf_grad(leaf); });
          }
          total.backward();
        }
        double grad_norm = 0;
        {
          const obs::TraceSpan span("optimizer", "train");
          const obs::prof::ProfRegion region("optimizer");
          const ScopedTrainPhase phase(TrainPhase::kOptimizer);
          if (options_.telemetry != nullptr) {
            grad_norm = grad_l2_norm(model.parameters());
          }
          if (options_.schedule) {
            // Pure function of the global step, so replicas agree for free.
            const double lr = options_.schedule->at_step(counted_steps);
            if (gp) {
              gpadam[ri]->set_learning_rate(lr);
            } else if (options_.strategy == DistStrategy::kDDP) {
              ddp[ri]->set_learning_rate(lr);
            } else {
              zero[ri]->set_learning_rate(lr);
            }
          }
          if (gp) {
            // No gradient collective at all: the halo exchanges already
            // left every rank holding the exact replicated gradient, so a
            // plain local Adam update keeps the replicas bit-identical.
            gpadam[ri]->step();
          } else if (options_.strategy == DistStrategy::kDDP) {
            ddp[ri]->step(rank);
          } else {
            zero[ri]->step(rank);
          }
        }

        obs::StepTelemetry telemetry;
        telemetry.step = counted_steps;
        telemetry.epoch = epoch;
        telemetry.rank = rank;
        telemetry.loss = step_loss;
        telemetry.grad_norm = grad_norm;
        // The EFFECTIVE learning rate this step used (schedule- and
        // resume-aware), not the base configuration value.
        telemetry.learning_rate =
            gp ? gpadam[ri]->learning_rate()
               : (options_.strategy == DistStrategy::kDDP
                      ? ddp[ri]->learning_rate()
                      : zero[ri]->learning_rate());
        telemetry.batch_graphs = batch.num_graphs;
        telemetry.batch_atoms = batch.num_nodes;
        telemetry.batch_edges = batch.num_edges;
        telemetry.step_seconds = step_timer.seconds();
        if (telemetry.step_seconds > 0) {
          telemetry.atoms_per_sec =
              static_cast<double>(telemetry.batch_atoms) /
              telemetry.step_seconds;
          telemetry.graphs_per_sec =
              static_cast<double>(telemetry.batch_graphs) /
              telemetry.step_seconds;
        }
        if (rank == 0) {
          // One formula for per-step and aggregate accounting: the modeled
          // time of the step's traffic delta. seconds() is additive over
          // deltas, so these per-step values sum exactly to the aggregate
          // comm_seconds in the final report (no double-counted latency).
          const Communicator::Traffic delta =
              comm.traffic().since(traffic_before);
          telemetry.collective_bytes = delta.total_bytes();
          telemetry.comm_seconds_modeled = interconnect_.seconds(delta, R);
          if (gp) {
            // Every collective this step is halo traffic. Price its
            // overlap from the exchanger's post/wait stamps: the boundary
            // gathers count as whatever the distance/RBF compute window
            // actually hid, the blocking exchanges (ghost gradients,
            // readout replication, ring folds) as fully exposed.
            const auto cost =
                interconnect_.overlap_cost(halo->take_events(), R);
            const double exposed = std::min(
                telemetry.comm_seconds_modeled,
                cost.exposed_seconds +
                    std::max(0.0, telemetry.comm_seconds_modeled -
                                      cost.total_seconds));
            telemetry.comm_exposed_seconds = exposed;
            telemetry.comm_overlapped_seconds =
                telemetry.comm_seconds_modeled - exposed;
            telemetry.comm_buckets = 0;
            telemetry.halo_bytes = halo->halo_bytes();
            telemetry.halo_exchanges = halo->exchanges();
            telemetry.halo_exposed_seconds = exposed;
            telemetry.halo_overlapped_seconds =
                telemetry.comm_overlapped_seconds;
            halo_bytes_total += telemetry.halo_bytes;
            halo_exchanges_total += telemetry.halo_exchanges;
            halo_exposed_total += telemetry.halo_exposed_seconds;
            halo_overlapped_total += telemetry.halo_overlapped_seconds;
          } else if (bucketer != nullptr) {
            // Price the overlap honestly from the bucketer's post/wait
            // stamps. Collectives outside the bucketer (the ZeRO clip's
            // scalar all-reduce) are blocking and count as fully exposed:
            // exposed = overlap-priced exposure + (delta - event total).
            const auto cost =
                interconnect_.overlap_cost(bucketer->take_events(), R);
            const double exposed = std::min(
                telemetry.comm_seconds_modeled,
                cost.exposed_seconds +
                    std::max(0.0, telemetry.comm_seconds_modeled -
                                      cost.total_seconds));
            telemetry.comm_exposed_seconds = exposed;
            telemetry.comm_overlapped_seconds =
                telemetry.comm_seconds_modeled - exposed;
            telemetry.comm_buckets = cost.ops;
          } else {
            // Sequential blocking path: every modeled second is exposed.
            telemetry.comm_exposed_seconds = telemetry.comm_seconds_modeled;
            telemetry.comm_overlapped_seconds = 0;
            telemetry.comm_buckets = 0;
          }
          exposed_seconds_total += telemetry.comm_exposed_seconds;
          overlapped_seconds_total += telemetry.comm_overlapped_seconds;
          buckets_total += telemetry.comm_buckets;
        }
        telemetry.live_bytes = MemoryTracker::instance().live().total();
        telemetry.peak_bytes = MemoryTracker::instance().peak_total();
        if (rank == 0) {
          const obs::prof::Totals prof_after = obs::prof::totals();
          telemetry.kernel_seconds =
              prof_after.kernel_seconds - prof_before.kernel_seconds;
          telemetry.kernel_flops = prof_after.flops - prof_before.flops;
          telemetry.kernel_bytes = prof_after.bytes - prof_before.bytes;
        }
        telemetry.kernel_backend =
            kernels::backend_name(kernels::active_backend());
        telemetry.compute_dtype =
            kernels::dtype_name(kernels::active_compute_dtype());
        obs::record_step_metrics(telemetry);
        if (options_.telemetry != nullptr) {
          options_.telemetry->on_step(telemetry);
        }
        ++counted_steps;
        ++local_steps;

        if (manager && counted_steps % copt.every_steps == 0) {
          // Rank 0 snapshots ALL ranks' state between two barriers: every
          // other rank is parked in the second barrier while the writer
          // reads the shared parameters and (for ZeRO) the other ranks'
          // moment shards, so the cross-thread reads are race-free — the
          // barrier's mutex/condvar provides the happens-before edge.
          comm.barrier();
          if (rank == 0) {
            const bool epoch_done = step + 1 == steps_per_epoch;
            ckpt::SnapshotBuilder builder;
            builder.add_bytes("meta.kind", gp ? "dist.gpar" : "dist");
            builder.add_i64("meta.ranks", R);
            builder.add_i64("meta.strategy",
                            static_cast<std::int64_t>(options_.strategy));
            builder.add_i64("meta.step", counted_steps);
            builder.add_i64("meta.epoch", epoch_done ? epoch + 1 : epoch);
            builder.add_i64("meta.epoch_step", epoch_done ? 0 : step + 1);
            builder.add_bytes("model",
                              model_payload_bytes(*replicas_.front()));
            // The state the NEXT step's epoch starts shuffling from.
            const Rng::State resume_rng =
                epoch_done ? sampler.state() : epoch_start_state;
            builder.add_bytes("sampler.rng", ckpt::pod_bytes(resume_rng));
            if (gp) {
              // Replicated plain-Adam state: rank 0's flattened moments
              // stand for every rank (the parity invariant keeps them
              // bitwise equal).
              builder.add_i64("optim.timestep", gpadam[ri]->timestep());
              builder.add_f64("optim.lr", gpadam[ri]->learning_rate());
              const std::vector<real> m =
                  flatten_moments(gpadam[ri]->moment1());
              const std::vector<real> v =
                  flatten_moments(gpadam[ri]->moment2());
              builder.add_reals("optim.m", m.data(), m.size());
              builder.add_reals("optim.v", v.data(), v.size());
            } else if (options_.strategy == DistStrategy::kDDP) {
              builder.add_i64("optim.timestep", ddp[ri]->timestep());
              builder.add_f64("optim.lr", ddp[ri]->learning_rate());
              const Tensor& m = ddp[ri]->moment1();
              const Tensor& v = ddp[ri]->moment2();
              builder.add_reals("optim.m", m.data(),
                                static_cast<std::size_t>(m.numel()));
              builder.add_reals("optim.v", v.data(),
                                static_cast<std::size_t>(v.numel()));
            } else {
              builder.add_i64("optim.timestep", zero[ri]->timestep());
              builder.add_f64("optim.lr", zero[ri]->learning_rate());
              for (int r = 0; r < R; ++r) {
                const auto rr = static_cast<std::size_t>(r);
                const std::string suffix = "." + std::to_string(r);
                const Tensor& m = zero[rr]->moment1();
                const Tensor& v = zero[rr]->moment2();
                builder.add_reals("optim.m" + suffix, m.data(),
                                  static_cast<std::size_t>(m.numel()));
                builder.add_reals("optim.v" + suffix, v.data(),
                                  static_cast<std::size_t>(v.numel()));
              }
            }
            manager->save(static_cast<std::uint64_t>(counted_steps),
                          builder.payload());
          }
          comm.barrier();
        }
        // Fault injection: every rank reaches this point with the same
        // counted_steps and throws together — no rank is left behind in a
        // barrier, so the simulated crash cannot deadlock the others.
        ckpt::maybe_crash(copt, counted_steps);
      }
    }
    rank_loss[ri] = local_steps > 0
                        ? loss_sum / static_cast<double>(local_steps)
                        : 0.0;
    rank_seconds[ri] = timer.seconds();
  };

  std::vector<std::exception_ptr> worker_errors(static_cast<std::size_t>(R));
  // sgnn-lint: allow(thread): the multi-rank driver runs one OS thread per
  // simulated rank by design; worker parallelism inside each rank still
  // goes through the shared ThreadPool.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    threads.emplace_back([&worker, &worker_errors, r] {
      // An exception escaping a std::thread terminates the process; park it
      // and rethrow on the joining thread instead. The fault-injection
      // crash is step-synchronized, so every rank throws together and none
      // is left waiting in a collective.
      try {
        worker(r);
      } catch (...) {
        worker_errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : worker_errors) {
    if (error) std::rethrow_exception(error);
  }

  SGNN_CHECK(replica_divergence() == 0.0,
             "replicas diverged — gradient synchronization is broken");

  DistTrainReport report;
  report.steps = options_.epochs * steps_per_epoch;
  report.final_train_loss =
      std::accumulate(rank_loss.begin(), rank_loss.end(), 0.0) / R;
  report.compute_seconds =
      *std::max_element(rank_seconds.begin(), rank_seconds.end());
  report.collective_traffic = comm.traffic();
  report.data_traffic = store.stats();
  report.peak_memory = MemoryTracker::instance().peak();
  report.peak_phase = MemoryTracker::instance().peak_phase();
  report.peak_forward =
      MemoryTracker::instance().peak_during(TrainPhase::kForward);
  report.peak_backward =
      MemoryTracker::instance().peak_during(TrainPhase::kBackward);
  report.peak_optimizer =
      MemoryTracker::instance().peak_during(TrainPhase::kOptimizer);

  // Interconnect time from the aggregate traffic record: per-kind bandwidth
  // terms plus per-call launch latency, through the SAME formula the
  // per-step telemetry uses. The model is additive over traffic deltas, so
  // this aggregate equals the sum of the per-step comm_seconds_modeled
  // values (the old code charged latency both inside the bandwidth terms
  // and again per call, double-counting it).
  report.comm_seconds = interconnect_.seconds(report.collective_traffic, R);
  report.comm_exposed_seconds = exposed_seconds_total;
  report.comm_overlapped_seconds = overlapped_seconds_total;
  report.comm_buckets = buckets_total;
  report.halo_bytes = halo_bytes_total;
  report.halo_exchanges = halo_exchanges_total;
  report.halo_exposed_seconds = halo_exposed_total;
  report.halo_overlapped_seconds = halo_overlapped_total;
  return report;
}

}  // namespace sgnn
