#include "sgnn/train/loss_scaler.hpp"

#include <cmath>

#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

LossScaler::LossScaler(const Options& options) : options_(options) {
  SGNN_CHECK(options.init_scale > 0, "init_scale must be positive");
  SGNN_CHECK(options.growth_factor >= 1, "growth_factor must be >= 1");
  SGNN_CHECK(options.backoff_factor > 0 && options.backoff_factor <= 1,
             "backoff_factor must be in (0, 1]");
  SGNN_CHECK(options.growth_interval > 0, "growth_interval must be positive");
  SGNN_CHECK(options.min_scale > 0, "min_scale must be positive");
  scale_ = options.enabled ? options.init_scale : 1.0;
}

bool LossScaler::grads_overflowed(const std::vector<Tensor>& parameters) {
  for (const auto& p : parameters) {
    const Tensor grad = p.grad();
    if (!grad.defined()) continue;
    const real* g = grad.data();
    const std::int64_t n = grad.numel();
    // Serial scan with early exit: overflow checks run once per step over
    // parameter-sized (not activation-sized) data.
    for (std::int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(g[i])) return true;
    }
  }
  return false;
}

void LossScaler::unscale(const std::vector<Tensor>& parameters) const {
  if (scale_ == 1.0) return;
  const real inv = static_cast<real>(1.0 / scale_);
  for (const auto& p : parameters) {
    Tensor grad = p.grad();
    if (!grad.defined()) continue;
    real* g = grad.data();
    parallel_for(0, grad.numel(), std::int64_t{1} << 15,
                 [=](std::int64_t begin, std::int64_t end) {
                   for (std::int64_t i = begin; i < end; ++i) {
                     g[i] *= inv;
                   }
                 });
  }
}

bool LossScaler::update(bool overflowed) {
  if (!options_.enabled) return !overflowed;
  if (overflowed) {
    const double next =
        std::max(options_.min_scale, scale_ * options_.backoff_factor);
    SGNN_LOG_DEBUG << "loss scale overflow: backing off " << scale_ << " -> "
                   << next;
    scale_ = next;
    good_steps_ = 0;
    ++skipped_steps_;
    return false;
  }
  ++good_steps_;
  if (good_steps_ >= options_.growth_interval) {
    scale_ *= options_.growth_factor;
    good_steps_ = 0;
  }
  return true;
}

}  // namespace sgnn
