#include "sgnn/train/zero.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

std::vector<real> flatten_parameters(const std::vector<Tensor>& parameters) {
  std::vector<real> flat;
  for (const auto& p : parameters) {
    const real* d = p.data();
    flat.insert(flat.end(), d, d + p.numel());
  }
  return flat;
}

std::vector<real> flatten_gradients(const std::vector<Tensor>& parameters) {
  std::vector<real> flat;
  for (const auto& p : parameters) {
    const Tensor grad = p.grad();
    if (grad.defined()) {
      const real* d = grad.data();
      flat.insert(flat.end(), d, d + grad.numel());
    } else {
      flat.insert(flat.end(), static_cast<std::size_t>(p.numel()), real{0});
    }
  }
  return flat;
}

void unflatten_into_parameters(const std::vector<real>& flat,
                               std::vector<Tensor>& parameters) {
  std::size_t offset = 0;
  for (auto& p : parameters) {
    const auto n = static_cast<std::size_t>(p.numel());
    SGNN_CHECK(offset + n <= flat.size(), "unflatten size mismatch");
    std::copy_n(flat.data() + offset, n, p.data());
    offset += n;
  }
  SGNN_CHECK(offset == flat.size(), "unflatten left " << flat.size() - offset
                                                      << " dangling values");
}

namespace {

std::size_t total_elements(const std::vector<Tensor>& parameters) {
  std::size_t total = 0;
  for (const auto& p : parameters) total += static_cast<std::size_t>(p.numel());
  return total;
}

}  // namespace

DDPAdam::DDPAdam(Communicator& comm, std::vector<Tensor> parameters,
                 const Adam::Options& options, std::size_t bucket_bytes)
    : comm_(comm), parameters_(std::move(parameters)), options_(options) {
  SGNN_CHECK(!parameters_.empty(), "DDPAdam needs parameters");
  const auto n = static_cast<std::int64_t>(total_elements(parameters_));
  if (bucket_bytes > 0) {
    bucketer_ = std::make_unique<GradBucketer>(
        comm_, parameters_, CollectiveKind::kAllReduce, bucket_bytes);
  }
  const ScopedMemCategory scope(MemCategory::kOptimizerState);
  m_ = Tensor::zeros(Shape{n});
  v_ = Tensor::zeros(Shape{n});
}

void DDPAdam::step(int rank) {
  const obs::TraceSpan span("ddp_adam_step", "optimizer");
  ++timestep_;
  std::vector<real> grad;
  if (bucketer_) {
    // Overlapped path: buckets were posted from the leaf-grad hook during
    // backward (or all at once here, if the trainer never armed the
    // bucketer); the drain assembles the same summed flat vector the
    // blocking all_reduce_sum produces — byte for byte.
    if (!bucketer_->active()) bucketer_->begin_step(rank);
    bucketer_->post_remaining();
    if (pre_drain_hook_) pre_drain_hook_();
    bucketer_->drain_all_reduce(grad);
    bucketer_->end_step();
  } else {
    grad = flatten_gradients(parameters_);
  }
  const ScopedBytes grad_staging(grad.size() * sizeof(real),
                                 MemCategory::kWorkspace);
  if (!bucketer_) {
    comm_.all_reduce_sum(rank, grad);
  }
  const auto scale = real{1} / static_cast<real>(comm_.num_ranks());
  for (auto& g : grad) g *= scale;
  if (max_grad_norm_ > 0) {
    // Clip the AVERAGED gradient. Every rank holds the identical vector and
    // sums it in the same (sequential) order, so the clip factor — and thus
    // the update — is bit-identical across replicas.
    double sum_sq = 0;
    for (const auto g : grad) {
      sum_sq += static_cast<double>(g) * static_cast<double>(g);
    }
    const double norm = std::sqrt(sum_sq);
    if (norm > max_grad_norm_) {
      const auto clip = static_cast<real>(max_grad_norm_ / norm);
      for (auto& g : grad) g *= clip;
    }
  }

  std::vector<real> param = flatten_parameters(parameters_);
  const ScopedBytes param_staging(param.size() * sizeof(real),
                                  MemCategory::kWorkspace);
  Adam::update_flat(param.data(), grad.data(), m_.data(), v_.data(),
                    param.size(), timestep_, options_);
  unflatten_into_parameters(param, parameters_);
}

void DDPAdam::zero_grad() {
  for (auto& p : parameters_) p.zero_grad();
}

ZeroAdam::ZeroAdam(Communicator& comm, std::vector<Tensor> parameters,
                   const Adam::Options& options, int stage,
                   std::size_t bucket_bytes)
    : comm_(comm),
      parameters_(std::move(parameters)),
      options_(options),
      stage_(stage) {
  SGNN_CHECK(!parameters_.empty(), "ZeroAdam needs parameters");
  SGNN_CHECK(stage == 1 || stage == 2, "ZeRO stage must be 1 or 2");
  total_elements_ = total_elements(parameters_);
  if (bucket_bytes > 0) {
    bucketer_ = std::make_unique<GradBucketer>(
        comm_, parameters_, CollectiveKind::kReduceScatter, bucket_bytes);
  }
  // The shard this rank owns is fixed by its position in the communicator;
  // every rank constructs its own ZeroAdam, so each allocates 1/R of the
  // optimizer state — the ZeRO stage-1 saving, visible to the memory
  // tracker. We size it to the LARGEST shard so ranks are interchangeable.
  std::size_t max_shard = 0;
  for (int r = 0; r < comm.num_ranks(); ++r) {
    const auto [begin, end] =
        Communicator::shard_range(total_elements_, r, comm.num_ranks());
    max_shard = std::max(max_shard, end - begin);
  }
  const ScopedMemCategory scope(MemCategory::kOptimizerState);
  m_ = Tensor::zeros(Shape{static_cast<std::int64_t>(max_shard)});
  v_ = Tensor::zeros(Shape{static_cast<std::int64_t>(max_shard)});
}

void ZeroAdam::step(int rank) {
  const obs::TraceSpan span("zero_adam_step", "optimizer");
  ++timestep_;

  // Gradient shard for this rank (summed across ranks), then averaged.
  std::vector<real> grad_shard;
  if (bucketer_) {
    // Overlapped path: bucketed reduce-scatter along the GLOBAL shard
    // boundaries, posted during backward; the drain assembles exactly the
    // shard the blocking reduce_scatter_sum yields.
    if (!bucketer_->active()) bucketer_->begin_step(rank);
    bucketer_->post_remaining();
    if (pre_drain_hook_) pre_drain_hook_();
    bucketer_->drain_reduce_scatter(grad_shard);
  } else {
    const std::vector<real> grad = flatten_gradients(parameters_);
    const ScopedBytes grad_staging(grad.size() * sizeof(real),
                                   MemCategory::kWorkspace);
    SGNN_CHECK(grad.size() == total_elements_, "gradient size changed");
    grad_shard = comm_.reduce_scatter_sum(rank, grad);
  }
  if (stage_ == 2) {
    // Gradient partitioning: the full per-parameter gradient buffers are
    // no longer needed once the owned shard exists.
    for (auto& p : parameters_) p.zero_grad();
  }
  const auto scale = real{1} / static_cast<real>(comm_.num_ranks());
  for (auto& g : grad_shard) g *= scale;
  if (max_grad_norm_ > 0) {
    // Global norm of the averaged gradient from per-shard partial sums: the
    // scalar all-reduce adds the partials in fixed rank order, so every
    // rank computes the identical clip factor (replicas stay bit-identical,
    // and the result matches DDP's full-vector clip up to fp association).
    double partial = 0;
    for (const auto g : grad_shard) {
      partial += static_cast<double>(g) * static_cast<double>(g);
    }
    std::vector<real> sum_sq = {static_cast<real>(partial)};
    comm_.all_reduce_sum(rank, sum_sq);
    const double norm = std::sqrt(static_cast<double>(sum_sq[0]));
    if (norm > max_grad_norm_) {
      const auto clip = static_cast<real>(max_grad_norm_ / norm);
      for (auto& g : grad_shard) g *= clip;
    }
  }

  // Update only the owned parameter shard with the owned optimizer state.
  std::vector<real> param = flatten_parameters(parameters_);
  const ScopedBytes param_staging(param.size() * sizeof(real),
                                  MemCategory::kWorkspace);
  const auto [begin, end] =
      Communicator::shard_range(total_elements_, rank, comm_.num_ranks());
  SGNN_CHECK(end - begin == grad_shard.size(), "shard size mismatch");
  std::vector<real> param_shard(param.begin() + static_cast<std::ptrdiff_t>(begin),
                                param.begin() + static_cast<std::ptrdiff_t>(end));
  Adam::update_flat(param_shard.data(), grad_shard.data(), m_.data(),
                    v_.data(), param_shard.size(), timestep_, options_);

  // Reassemble the full updated parameter vector on every rank.
  if (bucketer_) {
    // Bucketed non-blocking gathers; the write-back of each landed bucket
    // overlaps the gathers still in flight. Ends the bucketed step.
    bucketer_->all_gather_params(param_shard);
  } else {
    const std::vector<real> gathered = comm_.all_gather(rank, param_shard);
    SGNN_CHECK(gathered.size() == total_elements_, "all_gather size mismatch");
    unflatten_into_parameters(gathered, parameters_);
  }
}

void ZeroAdam::zero_grad() {
  for (auto& p : parameters_) p.zero_grad();
}

}  // namespace sgnn
