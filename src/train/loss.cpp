#include "sgnn/train/loss.hpp"

#include <cmath>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

/// (G, 1) tensor of 1/atom-count per graph.
Tensor inverse_atoms(const GraphBatch& batch) {
  const ScopedMemCategory scope(MemCategory::kWorkspace);
  Tensor inv = Tensor::zeros(Shape{batch.num_graphs, 1});
  real* p = inv.data();
  const auto counts = batch.nodes_per_graph();
  for (std::int64_t g = 0; g < batch.num_graphs; ++g) {
    const auto n = counts[static_cast<std::size_t>(g)];
    SGNN_CHECK(n > 0, "graph " << g << " has no atoms");
    p[g] = real{1} / static_cast<real>(n);
  }
  return inv;
}

}  // namespace

LossTerms multitask_loss(const Tensor& predicted_energy,
                         const Tensor& predicted_forces,
                         const GraphBatch& batch,
                         const LossWeights& weights) {
  SGNN_CHECK(predicted_energy.shape() == batch.energy.shape(),
             "energy prediction shape mismatch");
  SGNN_CHECK(predicted_forces.shape() == batch.forces.shape(),
             "force prediction shape mismatch");

  const Tensor inv = inverse_atoms(batch);
  const Tensor energy_loss =
      mse_loss(predicted_energy * inv, batch.energy * inv);
  const Tensor force_loss = mse_loss(predicted_forces, batch.forces);

  LossTerms terms;
  terms.energy_mse = energy_loss.item();
  terms.force_mse = force_loss.item();
  terms.total = energy_loss * weights.energy + force_loss * weights.force;
  return terms;
}

LossTerms multitask_loss(const EGNNModel::Output& prediction,
                         const GraphBatch& batch, const LossWeights& weights) {
  LossTerms terms =
      multitask_loss(prediction.energy, prediction.forces, batch, weights);
  if (prediction.dipole.defined()) {
    const Tensor dipole_loss = mse_loss(prediction.dipole, batch.dipole);
    terms.dipole_mse = dipole_loss.item();
    terms.total = terms.total + dipole_loss * weights.dipole;
  }
  return terms;
}

EvalMetrics evaluate_batch(const EGNNModel& model, const GraphBatch& batch,
                           const LossWeights& weights) {
  const autograd::NoGradGuard no_grad;
  const auto out = model.forward(batch);
  const LossTerms terms = multitask_loss(out, batch, weights);

  EvalMetrics metrics;
  metrics.loss = terms.total.item();
  metrics.num_graphs = batch.num_graphs;
  metrics.num_nodes = batch.num_nodes;

  const auto counts = batch.nodes_per_graph();
  const real* ep = out.energy.data();
  const real* et = batch.energy.data();
  double energy_abs = 0;
  for (std::int64_t g = 0; g < batch.num_graphs; ++g) {
    energy_abs += std::abs(ep[g] - et[g]) /
                  static_cast<double>(counts[static_cast<std::size_t>(g)]);
  }
  metrics.energy_mae_per_atom =
      energy_abs / static_cast<double>(batch.num_graphs);

  const real* fp = out.forces.data();
  const real* ft = batch.forces.data();
  double force_abs = 0;
  for (std::int64_t i = 0; i < batch.num_nodes * 3; ++i) {
    force_abs += std::abs(fp[i] - ft[i]);
  }
  metrics.force_mae = force_abs / static_cast<double>(batch.num_nodes * 3);

  if (out.dipole.defined()) {
    const real* dp = out.dipole.data();
    const real* dt = batch.dipole.data();
    double dipole_abs = 0;
    for (std::int64_t g = 0; g < batch.num_graphs; ++g) {
      dipole_abs += std::abs(dp[g] - dt[g]);
    }
    metrics.dipole_mae = dipole_abs / static_cast<double>(batch.num_graphs);
  }
  return metrics;
}

void MetricAccumulator::add(const EvalMetrics& m) {
  loss_sum += m.loss;
  energy_mae_sum += m.energy_mae_per_atom * static_cast<double>(m.num_graphs);
  dipole_mae_sum += m.dipole_mae * static_cast<double>(m.num_graphs);
  force_mae_sum += m.force_mae * static_cast<double>(m.num_nodes);
  graphs += m.num_graphs;
  nodes += m.num_nodes;
  batches += 1;
}

EvalMetrics MetricAccumulator::mean() const {
  EvalMetrics m;
  if (batches > 0) m.loss = loss_sum / static_cast<double>(batches);
  if (graphs > 0) {
    m.energy_mae_per_atom = energy_mae_sum / static_cast<double>(graphs);
    m.dipole_mae = dipole_mae_sum / static_cast<double>(graphs);
  }
  if (nodes > 0) m.force_mae = force_mae_sum / static_cast<double>(nodes);
  m.num_graphs = graphs;
  m.num_nodes = nodes;
  return m;
}

}  // namespace sgnn
