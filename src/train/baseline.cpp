#include "sgnn/train/baseline.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {

EnergyBaseline EnergyBaseline::fit(
    const std::vector<const MolecularGraph*>& graphs) {
  SGNN_CHECK(!graphs.empty(), "baseline fit needs graphs");

  // Map the species actually present to compact columns.
  std::array<int, elements::kMaxAtomicNumber> column{};
  column.fill(-1);
  int num_columns = 0;
  for (const auto* g : graphs) {
    for (const auto z : g->structure.species) {
      auto& c = column[static_cast<std::size_t>(z)];
      if (c < 0) c = num_columns++;
    }
  }

  // Normal equations A^T A x = A^T b with a small ridge term; A[g][c] is
  // the count of species c in graph g.
  const auto n = static_cast<std::size_t>(num_columns);
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  std::vector<double> counts(n);
  for (const auto* g : graphs) {
    std::fill(counts.begin(), counts.end(), 0.0);
    for (const auto z : g->structure.species) {
      counts[static_cast<std::size_t>(column[static_cast<std::size_t>(z)])] +=
          1.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (counts[i] == 0.0) continue;
      atb[i] += counts[i] * g->energy;
      for (std::size_t j = 0; j < n; ++j) {
        ata[i][j] += counts[i] * counts[j];
      }
    }
  }
  constexpr double kRidge = 1e-6;
  for (std::size_t i = 0; i < n; ++i) ata[i][i] += kRidge;

  // Gaussian elimination with partial pivoting.
  std::vector<double> solution = atb;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(ata[row][col]) > std::abs(ata[pivot][col])) pivot = row;
    }
    std::swap(ata[col], ata[pivot]);
    std::swap(solution[col], solution[pivot]);
    SGNN_CHECK(std::abs(ata[col][col]) > 1e-12,
               "singular system in baseline fit");
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = ata[row][col] / ata[col][col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) ata[row][j] -= factor * ata[col][j];
      solution[row] -= factor * solution[col];
    }
  }
  for (std::size_t col = n; col-- > 0;) {
    for (std::size_t j = col + 1; j < n; ++j) {
      solution[col] -= ata[col][j] * solution[j];
    }
    solution[col] /= ata[col][col];
  }

  EnergyBaseline baseline;
  for (int z = 0; z < elements::kMaxAtomicNumber; ++z) {
    const int c = column[static_cast<std::size_t>(z)];
    if (c >= 0) {
      baseline.e0_[static_cast<std::size_t>(z)] =
          solution[static_cast<std::size_t>(c)];
    }
  }
  return baseline;
}

double EnergyBaseline::offset(const std::vector<int>& species) const {
  double total = 0;
  for (const auto z : species) {
    SGNN_DCHECK(z >= 0 && z < elements::kMaxAtomicNumber,
                "species out of range");
    total += e0_[static_cast<std::size_t>(z)];
  }
  return total;
}

void EnergyBaseline::subtract_from(GraphBatch& batch) const {
  real* energy = batch.energy.data();
  for (std::size_t i = 0; i < batch.species.size(); ++i) {
    const auto graph = static_cast<std::size_t>(batch.node_to_graph[i]);
    energy[graph] -=
        static_cast<real>(e0_[static_cast<std::size_t>(batch.species[i])]);
  }
}

}  // namespace sgnn
