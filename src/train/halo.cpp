#include "sgnn/train/halo.hpp"

#include <algorithm>

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/memory_tracker.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn::gpar {

HaloExchanger::HaloExchanger(Communicator& comm, int rank,
                             const GraphPartition& partition,
                             const GraphBatch& batch)
    : comm_(comm),
      me_(rank),
      part_(partition),
      mine_(partition.ranks.at(static_cast<std::size_t>(rank))) {
  SGNN_CHECK(comm.num_ranks() == partition.num_ranks,
             "partition built for " << partition.num_ranks
                                    << " ranks, communicator has "
                                    << comm.num_ranks());
  SGNN_CHECK(partition.num_nodes == batch.num_nodes &&
                 partition.num_edges == batch.num_edges,
             "partition does not describe this batch");
  const std::int64_t owned = mine_.num_owned();
  const std::int64_t local_edges = mine_.num_local_edges();

  species_.reserve(static_cast<std::size_t>(owned));
  for (std::int64_t i = mine_.owned_begin; i < mine_.owned_end; ++i) {
    species_.push_back(batch.species[static_cast<std::size_t>(i)]);
  }

  positions_ = Tensor::zeros(Shape{owned, 3});
  std::copy_n(batch.positions.data() + mine_.owned_begin * 3,
              static_cast<std::size_t>(owned * 3), positions_.data());

  Tensor shift = Tensor::zeros(Shape{local_edges, 3});
  std::copy_n(batch.edge_shift.data() + mine_.edge_begin * 3,
              static_cast<std::size_t>(local_edges * 3), shift.data());

  // Every in-edge of an owned node lives in this rank's slice, so the
  // local degree count IS the global one (integer counts — exact).
  const ScopedMemCategory scope(MemCategory::kWorkspace);
  Tensor inv_degree = Tensor::zeros(Shape{owned, 1});
  real* d = inv_degree.data();
  for (const auto dst : mine_.local_dst) d[dst] += 1;
  for (std::int64_t i = 0; i < owned; ++i) {
    d[i] = real{1} / std::max(d[i], real{1});
  }

  context_.edge_src = &mine_.local_src;
  context_.edge_dst = &mine_.local_dst;
  context_.edge_shift = shift;
  context_.inv_degree = inv_degree;
  context_.num_nodes = owned;
  context_.halo = this;
}

HaloExchanger::~HaloExchanger() {
  // A simulated crash can unwind mid-window with gathers still in flight;
  // the progress engine owns the buffers until completion, so drain them
  // here (every rank posted symmetrically before throwing, so these waits
  // complete; failures from a dying communicator are already reported
  // through the primary exception).
  for (PendingGather* pending : {&pending_x_, &pending_h_}) {
    if (pending->open && pending->posted) {
      try {
        pending->handle.wait();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
    pending->open = false;
  }
}

void HaloExchanger::record_event(CollectiveKind kind, std::uint64_t bytes,
                                 double post, double wait) {
  InterconnectModel::OverlapEvent event;
  event.kind = kind;
  event.bytes = bytes;
  event.post_seconds = post;
  event.wait_seconds = wait;
  events_.push_back(event);
}

std::vector<InterconnectModel::OverlapEvent> HaloExchanger::take_events() {
  std::vector<InterconnectModel::OverlapEvent> taken;
  taken.swap(events_);
  return taken;
}

void HaloExchanger::count_exchange(std::uint64_t bytes) {
  halo_bytes_ += bytes;
  ++exchanges_;
  if (me_ == 0) {
    // Once per LOGICAL collective (mirrors the Communicator's traffic
    // counters, which the progress engine bumps once per op, not per rank).
    obs::MetricsRegistry::instance()
        .counter("halo.bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("halo.exchanges").add(1);
  }
}

void HaloExchanger::post_boundary_gather(const real* rows, std::int64_t cols,
                                         PendingGather& pending) {
  SGNN_CHECK(!pending.open, "halo boundary gather already in flight");
  const int num_ranks = part_.num_ranks;
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_ranks));
  std::size_t total = 0;
  for (int r = 0; r < num_ranks; ++r) {
    counts[static_cast<std::size_t>(r)] =
        part_.ranks[static_cast<std::size_t>(r)].boundary.size() *
        static_cast<std::size_t>(cols);
    total += counts[static_cast<std::size_t>(r)];
  }
  pending.open = true;
  pending.posted = total > 0;
  pending.bytes = total * sizeof(real);
  pending.post_seconds = clock_.seconds();
  if (!pending.posted) return;  // symmetric: counts are global

  pending.piece.resize(mine_.boundary.size() * static_cast<std::size_t>(cols));
  real* out = pending.piece.data();
  for (std::size_t i = 0; i < mine_.boundary.size(); ++i) {
    const std::int64_t local = mine_.boundary[i] - mine_.owned_begin;
    std::copy_n(rows + local * cols, static_cast<std::size_t>(cols),
                out + static_cast<std::int64_t>(i) * cols);
  }
  pending.gathered.resize(total);
  pending.handle =
      comm_.iall_gather_counts(me_, pending.piece, counts, pending.gathered);
  count_exchange(pending.bytes);
}

void HaloExchanger::wait_gather(PendingGather& pending) {
  SGNN_CHECK(pending.open, "halo gather waited before being posted");
  if (pending.posted) {
    pending.handle.wait();
    record_event(CollectiveKind::kAllGather, pending.bytes,
                 pending.post_seconds, clock_.seconds());
  }
  pending.open = false;
}

Tensor HaloExchanger::make_src_select(const Tensor& owned,
                                      const std::vector<real>& ghost,
                                      std::int64_t cols) {
  const Tensor od = owned.detach();
  const std::int64_t owned_rows = mine_.num_owned();
  const std::int64_t edges = mine_.num_local_edges();
  Tensor out = Tensor::make_result(
      Shape{edges, cols}, {owned},
      [this, cols](const Tensor& grad) -> std::vector<Tensor> {
        return {ghost_scatter_grad(grad, cols)};
      },
      "halo_select_src");
  const obs::prof::KernelScope prof(
      "halo_select", 0,
      obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)), edges,
                         cols));
  const real* po = od.data();
  const real* pg = ghost.data();
  real* dst = out.data();
  for (std::int64_t e = 0; e < edges; ++e) {
    const std::int64_t src = mine_.local_src[static_cast<std::size_t>(e)];
    const real* row =
        src < owned_rows
            ? po + src * cols
            : pg + mine_.halo_fetch[static_cast<std::size_t>(
                       src - owned_rows)] *
                       cols;
    std::copy_n(row, static_cast<std::size_t>(cols), dst + e * cols);
  }
  return out;
}

Tensor HaloExchanger::select_src_x(const Tensor& x, const Tensor& h) {
  const std::int64_t owned = mine_.num_owned();
  SGNN_CHECK(x.rank() == 2 && x.dim(0) == owned && x.dim(1) == 3,
             "select_src_x expects owned (" << owned << ", 3) coordinates, "
                                            << "got "
                                            << x.shape().to_string());
  SGNN_CHECK(h.rank() == 2 && h.dim(0) == owned,
             "select_src_x expects owned feature rows, got "
                 << h.shape().to_string());
  const obs::prof::ProfRegion region("halo");
  // Post BOTH exchanges up front: x resolves now (the geometry needs it),
  // h keeps flying across the distance/RBF compute and lands in
  // select_src_h — that window is the overlap this module exists for.
  const Tensor xd = x.detach();
  const Tensor hd = h.detach();
  post_boundary_gather(xd.data(), 3, pending_x_);
  post_boundary_gather(hd.data(), h.dim(1), pending_h_);
  if (pre_wait_hook_) pre_wait_hook_();
  wait_gather(pending_x_);
  return make_src_select(x, pending_x_.gathered, 3);
}

Tensor HaloExchanger::select_src_h(const Tensor& h) {
  SGNN_CHECK(pending_h_.open,
             "select_src_h without a preceding select_src_x (the h exchange "
             "is posted there)");
  const obs::prof::ProfRegion region("halo");
  wait_gather(pending_h_);
  return make_src_select(h, pending_h_.gathered, h.dim(1));
}

Tensor HaloExchanger::ghost_scatter_grad(const Tensor& grad,
                                         std::int64_t cols) {
  const obs::prof::ProfRegion region("halo");
  const int num_ranks = part_.num_ranks;
  const std::int64_t owned = mine_.num_owned();
  Tensor out = Tensor::zeros(Shape{owned, cols});

  // Exchange the per-edge gradient rows of every rank's ghost edges. The
  // rows are shipped PER EDGE (not pre-summed per node) precisely so the
  // owner can fold them in global edge order — pre-summing would re-bracket
  // the floating-point accumulation and break bit-identity.
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_ranks));
  std::size_t total = 0;
  for (int r = 0; r < num_ranks; ++r) {
    counts[static_cast<std::size_t>(r)] =
        part_.ranks[static_cast<std::size_t>(r)].ghost_edges.size() *
        static_cast<std::size_t>(cols);
    total += counts[static_cast<std::size_t>(r)];
  }
  const real* pg = grad.data();
  std::vector<real> gathered(total);
  if (total > 0) {
    std::vector<real> piece(mine_.ghost_edges.size() *
                            static_cast<std::size_t>(cols));
    for (std::size_t i = 0; i < mine_.ghost_edges.size(); ++i) {
      std::copy_n(pg + mine_.ghost_edges[i] * cols,
                  static_cast<std::size_t>(cols),
                  piece.data() + static_cast<std::int64_t>(i) * cols);
    }
    const double post = clock_.seconds();
    CollectiveHandle handle =
        comm_.iall_gather_counts(me_, piece, counts, gathered);
    handle.wait();  // backward needs the rows immediately: fully exposed
    record_event(CollectiveKind::kAllGather, total * sizeof(real), post,
                 post);
    count_exchange(total * sizeof(real));
  }

  // Fold every edge's contribution into its owner row in GLOBAL edge order:
  // rank blocks ascending, slice order within a block. Block me_ uses the
  // local gradient rows directly (same bytes as its gathered copy).
  const obs::prof::KernelScope prof(
      "halo_scatter", 0,
      obs::prof::sat_mul(
          static_cast<std::int64_t>(sizeof(real)),
          obs::prof::sat_add(
              obs::prof::sat_mul(2, mine_.num_local_edges(), cols),
              2 * static_cast<std::int64_t>(total))));
  real* po = out.data();
  std::size_t offset = 0;
  for (int r = 0; r < num_ranks; ++r) {
    if (r == me_) {
      const std::int64_t edges = mine_.num_local_edges();
      for (std::int64_t e = 0; e < edges; ++e) {
        const std::int64_t src = mine_.local_src[static_cast<std::size_t>(e)];
        if (src >= owned) continue;  // ghost: delivered to its owner
        real* dst = po + src * cols;
        const real* row = pg + e * cols;
        for (std::int64_t c = 0; c < cols; ++c) dst[c] += row[c];
      }
    } else {
      const real* block = gathered.data() + offset;
      for (const auto& [pos, target] :
           mine_.inbound[static_cast<std::size_t>(r)]) {
        real* dst = po + target * cols;
        const real* row = block + pos * cols;
        for (std::int64_t c = 0; c < cols; ++c) dst[c] += row[c];
      }
    }
    offset += counts[static_cast<std::size_t>(r)];
  }
  return out;
}

Tensor HaloExchanger::all_gather_rows(const Tensor& owned) {
  const std::int64_t owned_rows = mine_.num_owned();
  SGNN_CHECK(owned.rank() == 2 && owned.dim(0) == owned_rows,
             "all_gather_rows expects this rank's owned rows, got "
                 << owned.shape().to_string());
  const obs::prof::ProfRegion region("halo");
  const std::int64_t cols = owned.dim(1);
  const Tensor od = owned.detach();
  const std::int64_t begin = mine_.owned_begin;
  Tensor out = Tensor::make_result(
      Shape{part_.num_nodes, cols}, {owned},
      [owned_rows, cols, begin](const Tensor& grad) -> std::vector<Tensor> {
        // The readout past this point is replicated, so its gradient is
        // identical on every rank; this rank's share is just its own rows.
        const obs::prof::KernelScope prof(
            "halo_all_gather", 0,
            obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                               owned_rows, cols),
            ".bwd");
        Tensor gx = Tensor::zeros(Shape{owned_rows, cols});
        std::copy_n(grad.data() + begin * cols,
                    static_cast<std::size_t>(owned_rows * cols), gx.data());
        return {gx};
      },
      "halo_all_gather");
  if (part_.num_ranks == 1) {
    std::copy_n(od.data(), static_cast<std::size_t>(owned_rows * cols),
                out.data());
    return out;
  }
  std::vector<std::size_t> counts(static_cast<std::size_t>(part_.num_ranks));
  std::size_t total = 0;
  for (int r = 0; r < part_.num_ranks; ++r) {
    counts[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(
            part_.ranks[static_cast<std::size_t>(r)].num_owned()) *
        static_cast<std::size_t>(cols);
    total += counts[static_cast<std::size_t>(r)];
  }
  std::vector<real> piece(od.data(),
                          od.data() + static_cast<std::size_t>(owned_rows) *
                                          static_cast<std::size_t>(cols));
  std::vector<real> gathered(total);
  const double post = clock_.seconds();
  CollectiveHandle handle =
      comm_.iall_gather_counts(me_, piece, counts, gathered);
  handle.wait();  // the heads need the full tensor now: fully exposed
  record_event(CollectiveKind::kAllGather, total * sizeof(real), post, post);
  count_exchange(total * sizeof(real));
  // Rank-order concatenation of contiguous owned ranges IS global node
  // order — no permutation needed.
  std::copy(gathered.begin(), gathered.end(), out.data());
  return out;
}

Tensor HaloExchanger::ring_fold(std::int64_t rows, std::int64_t cols,
                                const std::function<void(real*)>& fold_own) {
  const obs::prof::ProfRegion region("halo");
  const std::size_t size =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  Tensor out = Tensor::zeros(Shape{rows, cols});
  const int num_ranks = part_.num_ranks;
  if (num_ranks == 1 || size == 0) {
    fold_own(out.data());
    return out;
  }

  // Fold continuation around the ring: op i carries rank i's partial (the
  // fold of ranks 0..i over the zero initial value). Rank r waits op r-1,
  // continues the fold with ITS rows (+= in the single-rank kernel's exact
  // per-element order), posts op r, and everyone reads op R-1 — the full
  // gradient with single-rank bracketing, replicated. Empty pieces for the
  // other ops are posted eagerly, so op i is fully posted as soon as rank i
  // finishes its fold: the chain is deadlock-free by induction.
  const double post = clock_.seconds();
  std::vector<CollectiveHandle> handles(static_cast<std::size_t>(num_ranks));
  std::vector<std::vector<real>> gathered(
      static_cast<std::size_t>(num_ranks));
  const std::vector<real> empty;
  std::vector<real> full;
  for (int i = 0; i < num_ranks; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    std::vector<std::size_t> counts(static_cast<std::size_t>(num_ranks), 0);
    counts[ii] = size;
    gathered[ii].resize(size);
    if (i == me_) {
      if (me_ > 0) {
        handles[ii - 1].wait();
        std::copy(gathered[ii - 1].begin(), gathered[ii - 1].end(),
                  out.data());
      }
      fold_own(out.data());
      full.assign(out.data(), out.data() + size);
      handles[ii] = comm_.iall_gather_counts(me_, full, counts, gathered[ii]);
    } else {
      handles[ii] = comm_.iall_gather_counts(me_, empty, counts,
                                             gathered[ii]);
    }
  }
  const auto last = static_cast<std::size_t>(num_ranks - 1);
  handles[last].wait();
  std::copy(gathered[last].begin(), gathered[last].end(), out.data());
  // Earlier ops executed before the last one (the engine matches posts in
  // order); these waits only release their buffers.
  for (std::size_t i = 0; i < last; ++i) handles[i].wait();
  // One summarized event per ring: R serialized hops of `size` reals. The
  // chain is inherently mostly exposed — only the aggregate split is
  // interesting, not per-hop stamps.
  record_event(CollectiveKind::kAllGather,
               static_cast<std::uint64_t>(num_ranks) * size * sizeof(real),
               post, clock_.seconds());
  count_exchange(static_cast<std::uint64_t>(num_ranks) * size *
                 sizeof(real));
  return out;
}

Tensor HaloExchanger::matmul_weight_grad(const Tensor& a, const Tensor& grad) {
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = grad.dim(1);
  SGNN_CHECK(grad.dim(0) == m,
             "matmul_weight_grad: " << m << " activation rows vs "
                                    << grad.dim(0) << " gradient rows");
  const Tensor ad = a.detach();
  const Tensor gd = grad.detach();
  return ring_fold(k, n, [m, k, n, ad, gd](real* c) {
    // Continues matmul_at_b's fold: p outermost ascending, one separately
    // rounded mul+add per element — the same bracketing the scalar AND
    // simd kernels use (the simd TU pins -ffp-contract=off; this TU has no
    // FMA to contract into).
    const obs::prof::KernelScope prof(
        "halo_ring", obs::prof::sat_mul(2, m, k, n),
        obs::prof::sat_mul(static_cast<std::int64_t>(sizeof(real)),
                           obs::prof::sat_add(obs::prof::sat_mul(m, k),
                                              obs::prof::sat_mul(m, n),
                                              obs::prof::sat_mul(k, n))),
        ".bwd");
    const real* pa = ad.data();
    const real* pg = gd.data();
    for (std::int64_t p = 0; p < m; ++p) {
      const real* arow = pa + p * k;
      const real* grow = pg + p * n;
      for (std::int64_t i = 0; i < k; ++i) {
        const real av = arow[i];
        real* crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * grow[j];
      }
    }
  });
}

Tensor HaloExchanger::rows_sum_grad(const Tensor& grad) {
  const std::int64_t m = grad.dim(0);
  const std::int64_t n = grad.dim(1);
  const Tensor gd = grad.detach();
  return ring_fold(1, n, [m, n, gd](real* c) {
    // Continues reduce_to's serial row-major fold over the global rows.
    const obs::prof::KernelScope prof(
        "halo_ring", obs::prof::sat_mul(m, n),
        obs::prof::sat_mul(static_cast<std::int64_t>(sizeof(real)),
                           obs::prof::sat_add(obs::prof::sat_mul(m, n), n)),
        ".bwd");
    const real* pg = gd.data();
    for (std::int64_t i = 0; i < m; ++i) {
      const real* row = pg + i * n;
      for (std::int64_t j = 0; j < n; ++j) c[j] += row[j];
    }
  });
}

Tensor HaloExchanger::scatter_rows_grad(const Tensor& grad,
                                        const std::vector<std::int64_t>& index,
                                        std::int64_t rows, std::int64_t cols) {
  const std::int64_t m = grad.dim(0);
  SGNN_CHECK(static_cast<std::size_t>(m) == index.size(),
             "scatter_rows_grad: " << m << " rows vs " << index.size()
                                   << " indices");
  const Tensor gd = grad.detach();
  return ring_fold(rows, cols, [m, cols, gd, &index](real* c) {
    // Continues scatter_rows_into's per-receiver input-order fold (this
    // rank's ids are a contiguous global-order slice of the input rows).
    const obs::prof::KernelScope prof(
        "halo_ring", 0,
        obs::prof::sat_mul(3 * static_cast<std::int64_t>(sizeof(real)), m,
                           cols),
        ".bwd");
    const real* pg = gd.data();
    for (std::int64_t r = 0; r < m; ++r) {
      real* dst = c + index[static_cast<std::size_t>(r)] * cols;
      const real* row = pg + r * cols;
      for (std::int64_t j = 0; j < cols; ++j) dst[j] += row[j];
    }
  });
}

}  // namespace sgnn::gpar
