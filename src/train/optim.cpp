#include "sgnn/train/optim.hpp"

#include <cmath>

#include "sgnn/util/error.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  SGNN_CHECK(!parameters_.empty(), "optimizer needs parameters");
  for (const auto& p : parameters_) {
    SGNN_CHECK(p.defined() && p.is_leaf() && p.requires_grad(),
               "optimizer parameters must be grad-requiring leaves");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : parameters_) p.zero_grad();
}

SGD::SGD(std::vector<Tensor> parameters, double learning_rate, double momentum)
    : Optimizer(std::move(parameters)), momentum_(momentum) {
  learning_rate_ = learning_rate;
  if (momentum_ != 0.0) {
    const ScopedMemCategory scope(MemCategory::kOptimizerState);
    for (const auto& p : this->parameters()) {
      velocity_.push_back(Tensor::zeros(p.shape()));
    }
  }
}

void SGD::step() {
  auto& params = parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor grad = params[i].grad();
    if (!grad.defined()) continue;
    real* p = params[i].data();
    const real* g = grad.data();
    const std::int64_t n = params[i].numel();
    const auto lr = static_cast<real>(learning_rate_);
    if (momentum_ == 0.0) {
      parallel_for(0, n, kParallelMinWork,
                   [=](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t k = begin; k < end; ++k) {
                       p[k] -= lr * g[k];
                     }
                   });
    } else {
      real* vel = velocity_[i].data();
      const auto mu = static_cast<real>(momentum_);
      parallel_for(0, n, kParallelMinWork,
                   [=](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t k = begin; k < end; ++k) {
                       vel[k] = mu * vel[k] + g[k];
                       p[k] -= lr * vel[k];
                     }
                   });
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, const Options& options)
    : Optimizer(std::move(parameters)), options_(options) {
  learning_rate_ = options.learning_rate;
  const ScopedMemCategory scope(MemCategory::kOptimizerState);
  for (const auto& p : this->parameters()) {
    m_.push_back(Tensor::zeros(p.shape()));
    v_.push_back(Tensor::zeros(p.shape()));
  }
}

void Adam::update_flat(real* param, const real* grad, real* m, real* v,
                       std::size_t count, std::int64_t timestep,
                       const Options& options) {
  const auto beta1 = static_cast<real>(options.beta1);
  const auto beta2 = static_cast<real>(options.beta2);
  const auto eps = static_cast<real>(options.epsilon);
  const auto lr = static_cast<real>(options.learning_rate);
  const real bias1 =
      real{1} - std::pow(beta1, static_cast<real>(timestep));
  const real bias2 =
      real{1} - std::pow(beta2, static_cast<real>(timestep));
  parallel_for(0, static_cast<std::int64_t>(count), kParallelMinWork,
               [=](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t k = begin; k < end; ++k) {
                   m[k] = beta1 * m[k] + (real{1} - beta1) * grad[k];
                   v[k] = beta2 * v[k] + (real{1} - beta2) * grad[k] * grad[k];
                   const real m_hat = m[k] / bias1;
                   const real v_hat = v[k] / bias2;
                   param[k] -= lr * m_hat / (std::sqrt(v_hat) + eps);
                 }
               });
}

void Adam::step() {
  ++timestep_;
  Options options = options_;
  options.learning_rate = learning_rate_;  // honor schedule updates
  auto& params = parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor grad = params[i].grad();
    if (!grad.defined()) continue;
    update_flat(params[i].data(), grad.data(), m_[i].data(), v_[i].data(),
                static_cast<std::size_t>(params[i].numel()), timestep_,
                options);
  }
}

}  // namespace sgnn
