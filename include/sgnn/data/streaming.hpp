#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/store/bp_file.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {

/// Out-of-core mini-batch loader: batches are assembled directly from a bp
/// container, deserializing records on demand through a bounded LRU cache.
/// This is the data path for datasets that do not fit in memory — the
/// situation the paper's ADIOS + DDStore stack exists for — and is tested
/// to be batch-for-batch identical to the in-memory DataLoader given the
/// same seed.
class StreamingLoader {
 public:
  /// `cache_capacity` = max resident graphs (0 disables caching).
  StreamingLoader(const BpReader& reader, std::int64_t batch_size,
                  std::uint64_t seed, std::size_t cache_capacity = 256,
                  bool shuffle = true);

  std::int64_t num_batches() const;
  std::int64_t num_graphs() const {
    return static_cast<std::int64_t>(order_.size());
  }

  void begin_epoch();
  bool has_next() const;
  GraphBatch next();

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< records deserialized from the file
    double hit_rate() const {
      const auto total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  const CacheStats& cache_stats() const { return stats_; }

 private:
  const MolecularGraph& fetch(std::size_t record);

  const BpReader& reader_;
  std::int64_t batch_size_;
  Rng rng_;
  bool shuffle_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;

  // LRU cache: list holds (record, graph) in recency order, map indexes it.
  std::size_t capacity_;
  std::list<std::pair<std::size_t, MolecularGraph>> lru_;
  std::unordered_map<std::size_t,
                     std::list<std::pair<std::size_t, MolecularGraph>>::iterator>
      cache_;
  CacheStats stats_;
};

}  // namespace sgnn
