#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sgnn/data/sources.hpp"
#include "sgnn/graph/graph.hpp"

namespace sgnn {

/// Options for building a scaled-down replica of the paper's 1.2 TB
/// aggregated dataset. `target_bytes` plays the role of "1.2 TB": per-source
/// byte shares follow Tab. I and sample counts fall out of the real
/// serialized graph sizes, so "0.1 TB ... 1.2 TB" sweeps translate directly
/// into byte budgets here (scaled by a constant documented in DESIGN.md).
struct DatasetOptions {
  std::uint64_t target_bytes = 4 << 20;
  std::uint64_t seed = 2024;
  LabelNoise noise;
};

/// The aggregated multi-source dataset of Sec. III-A.
class AggregatedDataset {
 public:
  /// Generates samples source-by-source until each source consumed its
  /// byte share of `options.target_bytes`.
  static AggregatedDataset generate(const DatasetOptions& options,
                                    const ReferencePotential& potential);

  const std::vector<MolecularGraph>& graphs() const { return graphs_; }
  DataSource source_of(std::size_t index) const {
    return source_of_[index];
  }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Tab. I row for one source.
  struct SourceStats {
    std::int64_t num_graphs = 0;
    std::int64_t num_nodes = 0;
    std::int64_t num_edges = 0;
    std::uint64_t bytes = 0;
  };
  const SourceStats& stats(DataSource source) const;

  /// Deterministic disjoint train/test split: shuffles indices with `seed`
  /// and reserves `test_fraction` of the *byte budget* for test. The test
  /// set is always drawn from the full aggregate — the paper's protocol —
  /// so training subsets that misrepresent the mix show the Fig. 4 cliff.
  struct Split {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
  };
  Split split(double test_fraction, std::uint64_t seed) const;

  /// Subsamples `budget_bytes` worth of training indices.
  /// `proportional == true` keeps the aggregate source mix (the paper's
  /// 0.2-1.2 TB subsets); `false` fills the budget preferring the
  /// cheapest-to-collect molecular sources first — the distribution-
  /// mismatch mechanism the paper conjectures for its 0.1 TB outlier.
  std::vector<std::size_t> subsample(const std::vector<std::size_t>& pool,
                                     std::uint64_t budget_bytes,
                                     bool proportional,
                                     std::uint64_t seed) const;

  /// Sum of serialized sizes of the given samples.
  std::uint64_t bytes_of(const std::vector<std::size_t>& indices) const;

  /// Pointer view for batching.
  std::vector<const MolecularGraph*> view(
      const std::vector<std::size_t>& indices) const;

 private:
  std::vector<MolecularGraph> graphs_;
  std::vector<DataSource> source_of_;
  std::array<SourceStats, static_cast<std::size_t>(DataSource::kCount)>
      stats_{};
  std::uint64_t total_bytes_ = 0;
};

}  // namespace sgnn
