#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {

/// Mini-batch iterator over a fixed set of graphs. Reshuffles at the start
/// of every epoch with its own deterministic generator, so runs are
/// reproducible regardless of what else consumes randomness.
class DataLoader {
 public:
  DataLoader(std::vector<const MolecularGraph*> graphs,
             std::int64_t batch_size, std::uint64_t seed,
             bool shuffle = true);

  /// Batches per epoch (last partial batch included).
  std::int64_t num_batches() const;
  std::int64_t num_graphs() const {
    return static_cast<std::int64_t>(graphs_.size());
  }

  /// Starts a new epoch (reshuffles when enabled).
  void begin_epoch();
  /// True while the current epoch has batches left.
  bool has_next() const;
  /// Builds and returns the next batch.
  GraphBatch next();

  /// Mid-epoch iteration state, for training-state checkpoints: the RNG,
  /// the current epoch's shuffled order, and the position within it.
  /// Restoring it resumes batch delivery bit-identically.
  struct State {
    Rng::State rng;
    std::vector<std::uint64_t> order;
    std::uint64_t cursor = 0;
  };
  State state() const;
  /// Restores a captured state; the loader must wrap the same number of
  /// graphs the state was captured over.
  void restore_state(const State& state);

 private:
  std::vector<const MolecularGraph*> graphs_;
  std::vector<std::size_t> order_;
  std::int64_t batch_size_;
  Rng rng_;
  bool shuffle_;
  std::size_t cursor_ = 0;
};

}  // namespace sgnn
