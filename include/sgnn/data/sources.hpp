#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgnn/graph/graph.hpp"
#include "sgnn/potential/potential.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {

/// The five public data sources aggregated in Tab. I of the paper. Each has
/// a synthetic generator matched to the source's structural statistics
/// (composition, atoms per graph, geometry class, byte share of the
/// aggregate); labels come from the ReferencePotential teacher.
enum class DataSource : int {
  kANI1x = 0,   ///< small organic molecules (C,H,N,O), equilibrium-ish
  kQM7X = 1,    ///< small organics incl. non-equilibrium distortions
  kOC2020 = 2,  ///< metal slabs + adsorbates (catalysis)
  kOC2022 = 3,  ///< oxide slabs + adsorbates
  kMPTrj = 4,   ///< bulk inorganic crystals
  kCount = 5,
};

const std::vector<DataSource>& all_sources();

/// Static description of one source.
struct SourceSpec {
  std::string name;
  /// Share of the aggregated dataset's bytes (Tab. I: 25/25/726/395/17 GB).
  double byte_fraction;
  /// Typical atom-count range of one sample.
  std::int64_t min_atoms;
  std::int64_t max_atoms;
  bool periodic;
};

const SourceSpec& source_spec(DataSource source);

/// Generates one unlabeled structure with the source's geometry class.
AtomicStructure generate_structure(DataSource source, Rng& rng);

/// Label-noise model: the stand-in for DFT convergence error and
/// cross-source label inconsistency; gives the scaling curves their
/// irreducible loss floor.
struct LabelNoise {
  double energy_sigma_per_atom = 0.02;  ///< eV per sqrt(atom)
  double force_sigma = 0.03;            ///< eV/Angstrom per component
};

/// Generates a fully labeled sample: structure -> radius graph at the
/// potential's cutoff -> teacher energy/forces (+ noise).
MolecularGraph generate_sample(DataSource source, Rng& rng,
                               const ReferencePotential& potential,
                               const LabelNoise& noise = {});

}  // namespace sgnn
