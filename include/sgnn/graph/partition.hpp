#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn::gpar {

/// One rank's share of a spatially partitioned GraphBatch.
///
/// Ownership is by contiguous global node ranges (spatial locality comes
/// from the atom order — see spatial_order below), and because every
/// neighbor search returns edges in canonical (dst, src) order, the edges
/// owned by a rank (those whose dst it owns) form a CONTIGUOUS slice of the
/// global edge list, and the global list is exactly the rank-order
/// concatenation of the per-rank slices. That is the property every
/// bit-identity argument in docs/graph-parallelism.md leans on.
///
/// Local node ids: owned nodes map to [0, num_owned()) by subtracting
/// owned_begin; ghost (halo) nodes map to num_owned() + (index in `halo`).
struct RankPartition {
  std::int64_t owned_begin = 0;  ///< global node range [begin, end)
  std::int64_t owned_end = 0;

  /// Sorted global ids of ghost nodes: the exact one-hop boundary set —
  /// non-owned sources of edges whose destination this rank owns.
  std::vector<std::int64_t> halo;

  std::int64_t edge_begin = 0;  ///< global edge slice [begin, end)
  std::int64_t edge_end = 0;

  /// Local-id endpoints of the edge slice: dst in [0, num_owned()), src in
  /// [0, num_owned() + num_halo()).
  std::vector<std::int64_t> local_src;
  std::vector<std::int64_t> local_dst;

  /// Sorted owned global ids some other rank's halo needs; each exchange
  /// posts exactly these rows.
  std::vector<std::int64_t> boundary;

  /// For halo entry k: its row in the rank-order concatenation of all
  /// ranks' boundary lists (what iall_gather_counts delivers).
  std::vector<std::int64_t> halo_fetch;

  /// Local edge indices whose src is a ghost, ascending — the rows this
  /// rank posts during the backward ghost-gradient exchange.
  std::vector<std::int64_t> ghost_edges;

  /// inbound[r]: merge schedule of rank r's ghost-gradient block into this
  /// rank's owned gradient — (position in r's ghost block, owned-local
  /// target row), ascending by position so the fold continues r's local
  /// edge order.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> inbound;

  std::int64_t num_owned() const { return owned_end - owned_begin; }
  std::int64_t num_halo() const {
    return static_cast<std::int64_t>(halo.size());
  }
  std::int64_t num_local_edges() const { return edge_end - edge_begin; }
};

/// Deterministic spatial partition of a GraphBatch across `num_ranks`
/// simulated ranks. Pure shape/index arithmetic — the same partition is
/// computed on every rank (and on every thread count).
struct GraphPartition {
  int num_ranks = 1;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  std::vector<RankPartition> ranks;

  /// Builds the partition and checks its invariants (every node owned
  /// exactly once, halo = exact one-hop boundary, edge slices cover the
  /// batch). Empty batches and ranks with zero owned nodes are valid.
  static GraphPartition build(const GraphBatch& batch, int num_ranks);

  /// Balanced contiguous range of `n` nodes owned by `rank` (first n % R
  /// ranks get the extra node). Pure index arithmetic, shared with the
  /// Communicator's shard_range philosophy but over NODES, not bytes.
  static std::pair<std::int64_t, std::int64_t> owned_range(std::int64_t n,
                                                           int rank,
                                                           int num_ranks) {
    const std::int64_t base = n / num_ranks;
    const std::int64_t rem = n % num_ranks;
    const std::int64_t begin = rank * base + std::min<std::int64_t>(rank, rem);
    return {begin, begin + base + (rank < rem ? 1 : 0)};
  }

  /// Owner of a global node id under owned_range (closed form).
  int owner(std::int64_t node) const {
    SGNN_CHECK(node >= 0 && node < num_nodes,
               "owner(" << node << ") out of range [0, " << num_nodes << ")");
    const std::int64_t base = num_nodes / num_ranks;
    const std::int64_t rem = num_nodes % num_ranks;
    // First `rem` ranks own base + 1 nodes, the rest own base.
    const std::int64_t split = rem * (base + 1);
    if (node < split) return static_cast<int>(node / (base + 1));
    if (base == 0) return num_ranks - 1;  // n < R: trailing ranks own nothing
    return static_cast<int>(rem + (node - split) / base);
  }
};

/// Deterministic spatial ordering of a structure's atoms: sorted along the
/// longest bounding-box axis (ties: next-longest axes, then original
/// index), so contiguous id ranges are spatial slabs and halos stay thin.
/// Safe for degenerate geometry — zero-extent axes (planar slabs, wires,
/// all atoms coincident) contribute only tie-breaking.
std::vector<std::int64_t> spatial_order(const AtomicStructure& structure);

}  // namespace sgnn::gpar
