#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/graph/graph.hpp"
#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// Disjoint union of several MolecularGraphs in model-ready form: node and
/// edge arrays are concatenated with node indices offset per graph, exactly
/// the batching scheme HydraGNN inherits from PyG.
///
/// Tensors carried here are inputs/labels (no autograd history). The edge
/// shift term makes periodic displacements reconstructible from positions:
///   r_ij = x[dst] - x[src] + shift
/// so a model differentiating through positions sees the minimum-image
/// geometry.
struct GraphBatch {
  std::int64_t num_graphs = 0;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;

  std::vector<int> species;                  ///< (N) atomic numbers
  Tensor positions;                          ///< (N, 3)
  std::vector<std::int64_t> edge_src;        ///< (E) global node ids
  std::vector<std::int64_t> edge_dst;        ///< (E)
  Tensor edge_shift;                         ///< (E, 3) periodic image term
  std::vector<std::int64_t> node_to_graph;   ///< (N) owning graph id

  Tensor energy;  ///< (G, 1) labels
  Tensor dipole;  ///< (G, 1) labels (|dipole moment|, multi-task target)
  Tensor forces;  ///< (N, 3) labels

  /// Builds the batch; graphs must outlive the call only.
  static GraphBatch from_graphs(const std::vector<const MolecularGraph*>& graphs);
  static GraphBatch from_graphs(const std::vector<MolecularGraph>& graphs);

  /// Atoms per graph (used for per-atom energy normalization).
  std::vector<std::int64_t> nodes_per_graph() const;
};

}  // namespace sgnn
