#pragma once

#include <cmath>

namespace sgnn {

/// Minimal 3-vector for atomic positions, forces, and cell geometry.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3 operator-() const { return {-x, -y, -z}; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm_squared() const { return dot(*this); }
  double norm() const { return std::sqrt(norm_squared()); }

  bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

inline Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace sgnn
