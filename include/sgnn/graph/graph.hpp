#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/graph/neighbor.hpp"
#include "sgnn/graph/structure.hpp"

namespace sgnn {

/// One labeled sample of the aggregated dataset: an atomistic structure,
/// its radius graph, and the two prediction targets the paper trains on —
/// total energy (graph-level) and per-atom forces (node-level).
struct MolecularGraph {
  AtomicStructure structure;
  EdgeList edges;
  double energy = 0.0;       ///< eV, property of the whole structure
  double dipole = 0.0;       ///< |dipole moment|, third (multi-task) target
  std::vector<Vec3> forces;  ///< eV/Angstrom, one per atom

  std::int64_t num_nodes() const { return structure.num_atoms(); }
  std::int64_t num_edges() const { return edges.size(); }

  /// Builds the radius graph; labels remain to be filled by the caller
  /// (the dataset generators use a reference potential).
  static MolecularGraph from_structure(AtomicStructure structure,
                                       double cutoff);

  /// Bytes this graph occupies in the `bp` container (store/serialize.hpp).
  /// The TB-scale accounting of Tab. I and the data-scaling sweeps is based
  /// on these real serialized sizes.
  std::size_t serialized_bytes() const;

  /// Structural invariants: labels sized to atoms, edge endpoints in range,
  /// displacements consistent with positions (up to minimum image).
  void validate() const;
};

}  // namespace sgnn
