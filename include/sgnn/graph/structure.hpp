#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgnn/graph/vec3.hpp"

namespace sgnn {

/// Chemical elements used across the paper's five data sources. Atomic
/// numbers follow the periodic table; kElementCount bounds the one-hot
/// species embedding in the model input layer.
namespace elements {
inline constexpr int kH = 1;
inline constexpr int kC = 6;
inline constexpr int kN = 7;
inline constexpr int kO = 8;
inline constexpr int kAl = 13;
inline constexpr int kSi = 14;
inline constexpr int kTi = 22;
inline constexpr int kFe = 26;
inline constexpr int kNi = 28;
inline constexpr int kCu = 29;
inline constexpr int kPt = 78;
/// One past the largest atomic number we model.
inline constexpr int kMaxAtomicNumber = 96;

/// Chemical symbol ("H", "C", ...; "X<Z>" for uncommon elements).
std::string symbol(int atomic_number);
/// Approximate covalent radius in Angstrom (used by structure generators).
double covalent_radius(int atomic_number);
/// Approximate atomic mass in amu (used by the MD example).
double atomic_mass(int atomic_number);
}  // namespace elements

/// One atomistic configuration: species, Cartesian positions, and an
/// optional orthorhombic periodic cell. This is the raw input a dataset
/// sample is built from; MolecularGraph adds connectivity.
struct AtomicStructure {
  std::vector<int> species;      ///< atomic numbers, one per atom
  std::vector<Vec3> positions;   ///< Angstrom
  Vec3 cell{0.0, 0.0, 0.0};      ///< orthorhombic box lengths; 0 => open
  bool periodic = false;         ///< minimum-image convention when true

  std::int64_t num_atoms() const {
    return static_cast<std::int64_t>(species.size());
  }

  /// Displacement r_j - r_i under the minimum-image convention when
  /// periodic (requires cutoff <= min(cell)/2 for correctness, which the
  /// neighbor search enforces).
  Vec3 displacement(std::int64_t i, std::int64_t j) const;

  /// Wraps every position into [0, cell) along periodic axes.
  void wrap_positions();

  /// Throws Error if species/positions disagree or a periodic cell axis is
  /// non-positive.
  void validate() const;
};

}  // namespace sgnn
