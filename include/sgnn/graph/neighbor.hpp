#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/graph/structure.hpp"

namespace sgnn {

/// Directed edge list with per-edge displacement vectors (r_dst - r_src,
/// minimum image). Both (i, j) and (j, i) are present — message passing is
/// directional.
///
/// Ordering contract: every search returns edges sorted by (dst, src)
/// ascending ("dst-major"). This makes the edge order a pure function of the
/// structure (brute-force and cell-list agree edge-for-edge), and it is what
/// the spatial partitioner relies on for bit-identical distributed training:
/// the edges owned by a contiguous node range form a contiguous slice of the
/// global list, so per-receiver scatter folds are reproduced exactly when a
/// graph is split across ranks (see docs/graph-parallelism.md).
struct EdgeList {
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;
  std::vector<Vec3> displacement;

  std::int64_t size() const { return static_cast<std::int64_t>(src.size()); }
};

/// O(N^2) reference neighbor search within `cutoff` (Angstrom). Used for
/// small molecules and as the oracle the cell-list search is tested against.
EdgeList brute_force_neighbors(const AtomicStructure& structure,
                               double cutoff);

/// Cell-list (linked-cell) neighbor search: O(N) for bounded density.
/// For periodic structures, requires cutoff <= min(cell)/2 (minimum image).
EdgeList cell_list_neighbors(const AtomicStructure& structure, double cutoff);

/// Picks the algorithm by system size; the crossover constant matches the
/// neighbor-search micro-bench in bench/.
EdgeList build_neighbors(const AtomicStructure& structure, double cutoff);

}  // namespace sgnn
