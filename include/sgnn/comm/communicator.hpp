#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// In-process multi-rank communicator: N simulated GPUs, one thread each,
/// exchanging data through shared memory with MPI/NCCL-style collective
/// semantics. Collective *results* are exact (tests pin them against
/// sequential reductions); collective *cost* is tracked as the byte volume
/// a ring implementation of each primitive would move, which the
/// InterconnectModel converts to time. This is the stand-in for the
/// NVLink-connected A100 quads of the paper's Perlmutter nodes.
///
/// All collectives are SPMD: every rank must call the same operation in the
/// same order (enforced loosely by the internal barriers; mismatched calls
/// deadlock just as they would in MPI).
class Communicator {
 public:
  explicit Communicator(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// In-place elementwise sum across ranks; every rank ends with the total.
  void all_reduce_sum(int rank, std::vector<real>& data);

  /// Root's data replaces everyone's.
  void broadcast(int rank, std::vector<real>& data, int root);

  /// Splits `input` (same on-rank length everywhere) into num_ranks
  /// contiguous shards; rank r receives the elementwise sum of shard r.
  /// Trailing shard may be shorter when the length is not divisible.
  std::vector<real> reduce_scatter_sum(int rank,
                                       const std::vector<real>& input);

  /// Concatenates per-rank shards (shard r from rank r) on every rank, in
  /// rank order.
  std::vector<real> all_gather(int rank, const std::vector<real>& shard);

  /// Payload bytes and call counts per collective so far (counted once per
  /// call, not per rank). InterconnectModel turns payloads into ring-
  /// algorithm bandwidth time and call counts into launch-latency time.
  struct Traffic {
    std::uint64_t all_reduce_bytes = 0;
    std::uint64_t reduce_scatter_bytes = 0;
    std::uint64_t all_gather_bytes = 0;
    std::uint64_t broadcast_bytes = 0;
    std::uint64_t all_reduce_calls = 0;
    std::uint64_t reduce_scatter_calls = 0;
    std::uint64_t all_gather_calls = 0;
    std::uint64_t broadcast_calls = 0;
    std::uint64_t collective_calls = 0;  ///< total across all four kinds

    std::uint64_t total_bytes() const {
      return all_reduce_bytes + reduce_scatter_bytes + all_gather_bytes +
             broadcast_bytes;
    }

    /// Elementwise difference (this minus `earlier`); the per-step traffic
    /// attribution the trainers feed to InterconnectModel::seconds.
    Traffic since(const Traffic& earlier) const;
  };
  Traffic traffic() const;
  void reset_traffic();

  /// Shard [begin, end) of a buffer of length n for rank r — the partition
  /// used by reduce_scatter_sum / all_gather (and by ZeRO's state shards).
  static std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                         int rank,
                                                         int num_ranks);

 private:
  int num_ranks_;

  // Reusable sense-reversing barrier.
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;

  // Exchange slots, valid between the surrounding barriers.
  std::vector<const std::vector<real>*> posted_;

  std::atomic<std::uint64_t> all_reduce_bytes_{0};
  std::atomic<std::uint64_t> reduce_scatter_bytes_{0};
  std::atomic<std::uint64_t> all_gather_bytes_{0};
  std::atomic<std::uint64_t> broadcast_bytes_{0};
  std::atomic<std::uint64_t> all_reduce_calls_{0};
  std::atomic<std::uint64_t> reduce_scatter_calls_{0};
  std::atomic<std::uint64_t> all_gather_calls_{0};
  std::atomic<std::uint64_t> broadcast_calls_{0};
  std::atomic<std::uint64_t> collective_calls_{0};
};

/// Analytic cost model of the intra-node fabric (NVLink-3-class numbers:
/// the paper's nodes pair four A100s over NVLink-3). Used to attribute a
/// wall-clock cost to collective traffic, since in-process exchange is
/// otherwise free.
///
/// The bandwidth term of each collective is PURE (a linear function of the
/// payload bytes, no latency folded in), and the launch latency is charged
/// separately per call via the *_latency_seconds accessors. That split
/// keeps the model additive: the time of an aggregate Traffic equals the
/// sum over any partition of it into per-step deltas — see seconds().
struct InterconnectModel {
  double link_bandwidth_bytes_per_s = 100.0e9;  ///< per direction, per pair
  double latency_seconds = 3.0e-6;              ///< per collective step

  /// Ring all-reduce: 2(R-1) steps, each moving n/R bytes per rank.
  /// Bandwidth term only; additive over payload bytes.
  double all_reduce_seconds(std::uint64_t bytes, int ranks) const;
  /// Ring reduce-scatter / all-gather: (R-1) steps of n/R bytes.
  double reduce_scatter_seconds(std::uint64_t bytes, int ranks) const;
  double all_gather_seconds(std::uint64_t bytes, int ranks) const;
  double broadcast_seconds(std::uint64_t bytes, int ranks) const;

  /// Launch latency of ONE call of each collective (steps x per-step
  /// latency). Multiply by the call count for the latency of many calls.
  double all_reduce_latency_seconds(int ranks) const;
  double reduce_scatter_latency_seconds(int ranks) const;
  double all_gather_latency_seconds(int ranks) const;
  double broadcast_latency_seconds(int ranks) const;

  /// Total modeled fabric time for a traffic record (aggregate or delta):
  /// per-kind bandwidth terms plus per-call latency from the call counts.
  /// Both trainers use this for per-step and aggregate accounting, so the
  /// two views stay consistent by construction.
  double seconds(const Communicator::Traffic& traffic, int ranks) const;
};

}  // namespace sgnn
