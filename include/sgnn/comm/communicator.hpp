#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// The four collective primitives, as an enum so cost accounting can be
/// parameterized over the kind (see InterconnectModel::overlap_cost).
enum class CollectiveKind {
  kAllReduce,
  kReduceScatter,
  kAllGather,
  kBroadcast,
};

namespace comm_detail {
struct NbOpState;
struct PendingOp;
}  // namespace comm_detail

/// Request object of a non-blocking collective (the MPI_Request analogue).
/// The posting rank keeps computing while the communicator's progress
/// engine matches and executes the operation; the buffers handed to the
/// post call must stay alive and untouched until wait() (or a true test())
/// returns. Handles are cheap shared references; destroying an un-waited
/// handle does NOT cancel the operation.
class CollectiveHandle {
 public:
  CollectiveHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// Polls for completion without blocking. Throws the deferred Error when
  /// the progress engine rejected the operation (mismatched SPMD posts).
  bool test() const;
  /// Blocks until the operation completes; rethrows deferred errors.
  void wait() const;

 private:
  friend class Communicator;
  explicit CollectiveHandle(std::shared_ptr<comm_detail::NbOpState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<comm_detail::NbOpState> state_;
};

/// In-process multi-rank communicator: N simulated GPUs, one thread each,
/// exchanging data through shared memory with MPI/NCCL-style collective
/// semantics. Collective *results* are exact (tests pin them against
/// sequential reductions); collective *cost* is tracked as the byte volume
/// a ring implementation of each primitive would move, which the
/// InterconnectModel converts to time. This is the stand-in for the
/// NVLink-connected A100 quads of the paper's Perlmutter nodes.
///
/// All collectives are SPMD: every rank must call the same operation in the
/// same order (enforced loosely by the internal barriers; mismatched calls
/// deadlock just as they would in MPI).
class Communicator {
 public:
  explicit Communicator(int num_ranks);
  /// Joins the progress engine; outstanding un-matched non-blocking posts
  /// are failed (their wait() throws) rather than left to deadlock.
  ~Communicator();
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int num_ranks() const { return num_ranks_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// In-place elementwise sum across ranks; every rank ends with the total.
  void all_reduce_sum(int rank, std::vector<real>& data);

  /// Root's data replaces everyone's.
  void broadcast(int rank, std::vector<real>& data, int root);

  /// Splits `input` (same on-rank length everywhere) into num_ranks
  /// contiguous shards; rank r receives the elementwise sum of shard r.
  /// Trailing shard may be shorter when the length is not divisible.
  std::vector<real> reduce_scatter_sum(int rank,
                                       const std::vector<real>& input);

  /// Concatenates per-rank shards (shard r from rank r) on every rank, in
  /// rank order.
  std::vector<real> all_gather(int rank, const std::vector<real>& shard);

  // -- Non-blocking collectives ---------------------------------------------
  //
  // MPI-style immediate variants: the call enqueues the operation with the
  // communicator's progress engine and returns a CollectiveHandle; the rank
  // keeps computing and synchronizes via wait()/test(). SPMD matching is by
  // per-rank post order: the i-th non-blocking post of every rank forms one
  // logical collective, so all ranks MUST post the same kinds/sizes in the
  // same order (a mismatch fails the handles instead of deadlocking).
  // Results are bit-identical to the blocking counterparts (fixed
  // rank-order reduction). Buffers belong to the engine until completion.

  /// Non-blocking all_reduce_sum: `data` holds the elementwise total across
  /// ranks once the handle completes.
  CollectiveHandle iall_reduce_sum(int rank, std::vector<real>& data);

  /// Non-blocking reduce-scatter with an EXPLICIT partition: `counts[r]`
  /// elements go to rank r (counts must be identical on every rank and sum
  /// to input.size()). On completion `piece` holds the elementwise sum of
  /// this rank's partition slice. The shard_range partition of the blocking
  /// reduce_scatter_sum is the special case counts[r] = |shard_range(n,r,R)|;
  /// explicit counts are what lets a gradient bucket scatter along GLOBAL
  /// shard boundaries rather than bucket-local ones.
  CollectiveHandle ireduce_scatter_counts(int rank,
                                          const std::vector<real>& input,
                                          const std::vector<std::size_t>& counts,
                                          std::vector<real>& piece);

  /// Non-blocking all-gather with explicit per-rank piece sizes (the inverse
  /// of ireduce_scatter_counts). `piece.size()` must equal counts[rank]; on
  /// completion `gathered` holds the rank-order concatenation of all pieces.
  CollectiveHandle iall_gather_counts(int rank, const std::vector<real>& piece,
                                      const std::vector<std::size_t>& counts,
                                      std::vector<real>& gathered);

  /// Payload bytes and call counts per collective so far (counted once per
  /// call, not per rank). InterconnectModel turns payloads into ring-
  /// algorithm bandwidth time and call counts into launch-latency time.
  struct Traffic {
    std::uint64_t all_reduce_bytes = 0;
    std::uint64_t reduce_scatter_bytes = 0;
    std::uint64_t all_gather_bytes = 0;
    std::uint64_t broadcast_bytes = 0;
    std::uint64_t all_reduce_calls = 0;
    std::uint64_t reduce_scatter_calls = 0;
    std::uint64_t all_gather_calls = 0;
    std::uint64_t broadcast_calls = 0;
    std::uint64_t collective_calls = 0;  ///< total across all four kinds

    std::uint64_t total_bytes() const {
      return all_reduce_bytes + reduce_scatter_bytes + all_gather_bytes +
             broadcast_bytes;
    }

    /// Elementwise difference (this minus `earlier`); the per-step traffic
    /// attribution the trainers feed to InterconnectModel::seconds.
    /// SGNN_CHECKs that every field of `earlier` is <= this snapshot's —
    /// swapping the arguments would silently wrap the unsigned subtraction
    /// into astronomically large byte counts.
    Traffic since(const Traffic& earlier) const;
  };
  Traffic traffic() const;
  void reset_traffic();

  /// Shard [begin, end) of a buffer of length n for rank r — the partition
  /// used by reduce_scatter_sum / all_gather (and by ZeRO's state shards).
  static std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                         int rank,
                                                         int num_ranks);

 private:
  /// Enqueues `op` for this rank with the progress engine (starting the
  /// engine thread on first use) and returns the caller's handle.
  CollectiveHandle enqueue(comm_detail::PendingOp op);
  /// Progress-engine body: matches same-sequence posts across ranks,
  /// executes them, and completes (or fails) the handles.
  void progress_loop();
  /// Records one executed non-blocking collective in the traffic counters
  /// and obs metrics — exactly once per logical op, at execution time.
  void count_nonblocking(CollectiveKind kind, std::uint64_t bytes);

  int num_ranks_;

  // Reusable sense-reversing barrier.
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;

  // Exchange slots, valid between the surrounding barriers.
  std::vector<const std::vector<real>*> posted_;

  // Non-blocking progress engine: one FIFO of pending posts per rank, one
  // lazily-started worker thread that executes a logical collective once
  // every rank's next post has arrived.
  std::mutex nb_mutex_;
  std::condition_variable nb_cv_;
  std::vector<std::deque<comm_detail::PendingOp>> nb_queues_;
  bool nb_shutdown_ = false;
  bool nb_engine_started_ = false;
  std::thread nb_engine_;

  std::atomic<std::uint64_t> all_reduce_bytes_{0};
  std::atomic<std::uint64_t> reduce_scatter_bytes_{0};
  std::atomic<std::uint64_t> all_gather_bytes_{0};
  std::atomic<std::uint64_t> broadcast_bytes_{0};
  std::atomic<std::uint64_t> all_reduce_calls_{0};
  std::atomic<std::uint64_t> reduce_scatter_calls_{0};
  std::atomic<std::uint64_t> all_gather_calls_{0};
  std::atomic<std::uint64_t> broadcast_calls_{0};
  std::atomic<std::uint64_t> collective_calls_{0};
};

/// Analytic cost model of the intra-node fabric (NVLink-3-class numbers:
/// the paper's nodes pair four A100s over NVLink-3). Used to attribute a
/// wall-clock cost to collective traffic, since in-process exchange is
/// otherwise free.
///
/// The bandwidth term of each collective is PURE (a linear function of the
/// payload bytes, no latency folded in), and the launch latency is charged
/// separately per call via the *_latency_seconds accessors. That split
/// keeps the model additive: the time of an aggregate Traffic equals the
/// sum over any partition of it into per-step deltas — see seconds().
struct InterconnectModel {
  double link_bandwidth_bytes_per_s = 100.0e9;  ///< per direction, per pair
  double latency_seconds = 3.0e-6;              ///< per collective step

  /// Ring all-reduce: 2(R-1) steps, each moving n/R bytes per rank.
  /// Bandwidth term only; additive over payload bytes.
  double all_reduce_seconds(std::uint64_t bytes, int ranks) const;
  /// Ring reduce-scatter / all-gather: (R-1) steps of n/R bytes.
  double reduce_scatter_seconds(std::uint64_t bytes, int ranks) const;
  double all_gather_seconds(std::uint64_t bytes, int ranks) const;
  double broadcast_seconds(std::uint64_t bytes, int ranks) const;

  /// Launch latency of ONE call of each collective (steps x per-step
  /// latency). Multiply by the call count for the latency of many calls.
  double all_reduce_latency_seconds(int ranks) const;
  double reduce_scatter_latency_seconds(int ranks) const;
  double all_gather_latency_seconds(int ranks) const;
  double broadcast_latency_seconds(int ranks) const;

  /// Total modeled fabric time for a traffic record (aggregate or delta):
  /// per-kind bandwidth terms plus per-call latency from the call counts.
  /// Both trainers use this for per-step and aggregate accounting, so the
  /// two views stay consistent by construction.
  double seconds(const Communicator::Traffic& traffic, int ranks) const;

  /// Modeled time of ONE collective call: bandwidth term + launch latency.
  double call_seconds(CollectiveKind kind, std::uint64_t bytes,
                      int ranks) const;

  /// One posted non-blocking collective on a rank's compute timeline:
  /// post/wait stamps are wall-clock offsets (seconds since the step
  /// started) measured by the posting rank. FIFO contract: events must be
  /// ordered by post time AND waited in the same order (which is how the
  /// GradBucketer drains).
  struct OverlapEvent {
    CollectiveKind kind = CollectiveKind::kAllReduce;
    std::uint64_t bytes = 0;
    double post_seconds = 0;  ///< when the op was posted
    double wait_seconds = 0;  ///< when the drain started waiting on it
  };

  /// Split of a step's modeled comm time into the part hidden behind
  /// compute and the part the rank would stall on.
  struct OverlapCost {
    double total_seconds = 0;      ///< sum of per-op modeled durations
    double exposed_seconds = 0;    ///< stall time not hidden by compute
    double overlapped_seconds = 0; ///< total - exposed
    std::int64_t ops = 0;
  };

  /// Prices a FIFO sequence of non-blocking collectives honestly: each op
  /// occupies the (serial) fabric for its modeled duration starting at
  /// max(post time, fabric free); at its wait, whatever of that duration
  /// has not yet elapsed on the rank's stall-adjusted clock is EXPOSED and
  /// pushes every later stamp out by the same amount. With no compute
  /// between post and wait this degrades to the all-exposed accounting
  /// (exposed == total); with enough compute everything overlaps.
  OverlapCost overlap_cost(const std::vector<OverlapEvent>& events,
                           int ranks) const;
};

}  // namespace sgnn
