#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sgnn::obs {

namespace detail {
/// Plain constant-initialized global — no magic-static guard — so the
/// disabled-tracing fast path in TraceSpan is one relaxed load and a branch.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One completed span. Timestamps are microseconds on the recorder's
/// steady-clock epoch. `rank` is the simulated GPU rank the span ran under
/// (-1 outside any rank context); it becomes the process lane of the
/// exported timeline, so a distributed epoch renders as one timeline per
/// rank in chrome://tracing / Perfetto.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  std::uint32_t tid = 0;
  int rank = -1;
  std::vector<std::pair<std::string, std::string>> args;
};

/// In-process span sink, sharded by thread so N rank threads tracing every
/// forward/backward/collective contend only within their shard. Collection
/// is lossless (vectors grow); exporting or clearing between runs bounds
/// memory.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  void enable();
  void disable();
  /// Drops all recorded events (tracing state is unchanged).
  void clear();

  void record(TraceEvent event);
  std::size_t size() const;
  /// All recorded events, sorted by (rank, tid, begin time).
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ("X" complete events; load via chrome://tracing
  /// or Perfetto). Ranks map to pids, threads to tids.
  std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  /// Microseconds since recorder construction (steady clock).
  std::int64_t now_us() const;

  /// Thread-local rank tag applied to spans opened on this thread.
  static int current_rank();
  static void set_current_rank(int rank);
  /// Stable small integer id for the calling thread.
  static std::uint32_t current_tid();

 private:
  TraceRecorder();

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  std::array<Shard, kShards> shards_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records [construction, destruction) into the TraceRecorder.
/// When tracing is disabled the constructor is a single branch and the
/// destructor another — cheap enough for per-step and per-collective use.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "span")
      : active_(tracing_enabled()) {
    if (!active_) return;
    event_.name = name;
    event_.category = category;
    event_.rank = TraceRecorder::current_rank();
    event_.tid = TraceRecorder::current_tid();
    event_.begin_us = TraceRecorder::instance().now_us();
  }

  ~TraceSpan() {
    if (!active_) return;
    TraceRecorder& recorder = TraceRecorder::instance();
    event_.end_us = recorder.now_us();
    recorder.record(std::move(event_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span will be recorded; guard arg() computation with it.
  bool active() const { return active_; }

  TraceSpan& arg(const char* key, std::string value) {
    if (active_) event_.args.emplace_back(key, std::move(value));
    return *this;
  }
  TraceSpan& arg(const char* key, std::int64_t value) {
    if (active_) event_.args.emplace_back(key, std::to_string(value));
    return *this;
  }
  TraceSpan& arg(const char* key, std::uint64_t value) {
    if (active_) event_.args.emplace_back(key, std::to_string(value));
    return *this;
  }
  TraceSpan& arg(const char* key, double value) {
    if (active_) event_.args.emplace_back(key, std::to_string(value));
    return *this;
  }

 private:
  bool active_;
  TraceEvent event_;
};

/// RAII rank tag for the calling thread: spans opened inside the scope carry
/// this rank (and the logger prefixes messages with it — see
/// Logger::set_thread_rank). The distributed trainer wraps each rank-worker
/// body in one of these.
class ScopedTraceRank {
 public:
  explicit ScopedTraceRank(int rank);
  ~ScopedTraceRank();
  ScopedTraceRank(const ScopedTraceRank&) = delete;
  ScopedTraceRank& operator=(const ScopedTraceRank&) = delete;

 private:
  int previous_rank_;
  int previous_log_rank_;
};

}  // namespace sgnn::obs
