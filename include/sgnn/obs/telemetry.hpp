#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sgnn::obs {

/// Everything the trainers know about one optimization step, in plain
/// numbers — the per-step record behind the paper's throughput / memory /
/// communication accounting. Serialized as one JSON object per line (JSONL)
/// so benches and the scaling sweep can consume a run without linking
/// against the trainer.
struct StepTelemetry {
  std::int64_t step = 0;   ///< global step index (within the run)
  std::int64_t epoch = 0;  ///< epoch the step belongs to
  int rank = -1;           ///< emitting rank; -1 for single-process training

  double loss = 0;           ///< total multitask loss of the batch
  double grad_norm = 0;      ///< joint L2 gradient norm before the update
  double learning_rate = 0;  ///< LR applied by this step

  std::int64_t batch_graphs = 0;
  std::int64_t batch_atoms = 0;
  std::int64_t batch_edges = 0;

  double step_seconds = 0;
  double atoms_per_sec = 0;
  double graphs_per_sec = 0;

  /// Collective payload moved during this step (bytes; exact, from
  /// Communicator::Traffic) and the fabric time the InterconnectModel
  /// attributes to it. Zero for single-process training.
  std::uint64_t collective_bytes = 0;
  double comm_seconds_modeled = 0;
  /// Split of comm_seconds_modeled into the stall the rank would actually
  /// feel and the part hidden behind backward/optimizer compute (priced
  /// from the GradBucketer's post/wait stamps; exposed + overlapped ==
  /// comm_seconds_modeled). With bucketing off, everything is exposed.
  double comm_exposed_seconds = 0;
  double comm_overlapped_seconds = 0;
  /// Non-blocking bucket collectives posted during this step.
  std::int64_t comm_buckets = 0;

  /// Graph-parallel halo traffic for this step: payload bytes moved by the
  /// halo exchanges, how many logical halo collectives ran, and the modeled
  /// fabric-time split into the stall the rank feels vs. the part hidden
  /// behind the distance/RBF compute window (exposed + overlapped == the
  /// halo share of comm_seconds_modeled). All zero outside graph-parallel
  /// runs; filled by rank 0 only, like the comm_* fields above.
  std::uint64_t halo_bytes = 0;
  std::int64_t halo_exchanges = 0;
  double halo_exposed_seconds = 0;
  double halo_overlapped_seconds = 0;

  /// Live and peak tracked allocation totals (MemoryTracker), bytes.
  std::int64_t live_bytes = 0;
  std::int64_t peak_bytes = 0;

  /// Per-step kernel profile snapshot (deltas of obs::prof::totals() across
  /// the step): time spent inside instrumented tensor kernels and the
  /// FLOPs / bytes those kernels attributed. Zero when the profiler is off.
  double kernel_seconds = 0;
  std::int64_t kernel_flops = 0;
  std::int64_t kernel_bytes = 0;

  /// Kernel backend ("scalar"/"simd") and compute dtype ("float64"/
  /// "float32") active while this step ran. Telemetry from different
  /// backends is not performance-comparable; these fields let sweep
  /// tooling tell lines apart. Empty when parsed from pre-backend logs.
  std::string kernel_backend;
  std::string compute_dtype;

  std::string to_json() const;
  /// Parses one to_json() line back; throws sgnn::Error on malformed input.
  static StepTelemetry from_json(const std::string& line);
};

/// Receiver of per-step telemetry. Implementations must tolerate concurrent
/// on_step() calls: the distributed trainer emits from every rank thread.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_step(const StepTelemetry& step) = 0;
};

/// Appends one JSON line per step to a file or stream.
class JsonlTelemetrySink final : public TelemetrySink {
 public:
  explicit JsonlTelemetrySink(const std::string& path);
  explicit JsonlTelemetrySink(std::ostream& out);

  void on_step(const StepTelemetry& step) override;
  std::int64_t lines_written() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream file_;
  std::ostream* out_;
  std::int64_t lines_ = 0;
};

/// Buffers steps in memory — for tests and in-process consumers (sweeps).
class RecordingTelemetrySink final : public TelemetrySink {
 public:
  void on_step(const StepTelemetry& step) override;
  std::vector<StepTelemetry> steps() const;

 private:
  mutable std::mutex mutex_;
  std::vector<StepTelemetry> steps_;
};

/// Parses a whole JSONL telemetry stream (one to_json() object per line,
/// blank lines ignored). A malformed line throws sgnn::Error naming the
/// 1-based line number and the offending field instead of decaying to zeros.
std::vector<StepTelemetry> read_jsonl(std::istream& in);
/// File-opening overload; the error also names the path.
std::vector<StepTelemetry> read_jsonl(const std::string& path);

/// Mirrors one step into the global MetricsRegistry: counters train.steps /
/// train.atoms / train.graphs, gauges train.loss / train.lr /
/// train.grad_norm / train.atoms_per_sec / train.graphs_per_sec /
/// mem.live_bytes / mem.peak_bytes, histogram step.seconds. The trainers
/// call this on every step regardless of whether a sink is attached.
void record_step_metrics(const StepTelemetry& step);

}  // namespace sgnn::obs
