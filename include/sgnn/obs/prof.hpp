#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sgnn::obs::prof {

/// Saturating multiply for KernelScope cost expressions. Shape products like
/// `2 * m * k * n` can exceed int64 for extreme (synthetic) shapes; a cost
/// estimate that clamps at INT64_MAX is still monotone and safe, whereas
/// wrap-around would poison roofline fractions with negative totals.
inline std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return out;
}

inline std::int64_t sat_mul(std::int64_t a, std::int64_t b, std::int64_t c) {
  return sat_mul(sat_mul(a, b), c);
}

inline std::int64_t sat_mul(std::int64_t a, std::int64_t b, std::int64_t c,
                            std::int64_t d) {
  return sat_mul(sat_mul(sat_mul(a, b), c), d);
}

/// Saturating add, same rationale as sat_mul.
inline std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return out;
}

inline std::int64_t sat_add(std::int64_t a, std::int64_t b, std::int64_t c) {
  return sat_add(sat_add(a, b), c);
}

namespace detail {
/// Plain constant-initialized global — no magic-static guard — so the
/// disabled fast path of ProfRegion/KernelScope is one relaxed load and a
/// branch (the same discipline as obs::detail::g_trace_enabled).
extern std::atomic<bool> g_prof_enabled;

struct Node;  // per-thread call-tree node; opaque outside prof.cpp

/// Pushes a child of the calling thread's current node and returns it.
/// `suffix` (when non-null) is appended to the name — the ".bwd" variants —
/// so call sites pay the concatenation only on the enabled path.
Node* enter(const char* name, const char* suffix = nullptr);
/// Pops back to the parent, adding elapsed time (and, for kernels, the
/// FLOP/byte cost) to the node's relaxed per-thread counters.
void leave(Node* node, std::int64_t begin_ns, std::int64_t flops,
           std::int64_t bytes, bool kernel);
std::int64_t now_ns();
/// Thread-local guard excluding calibration (and other internal work) from
/// the profile while it runs under an enabled profiler.
bool suppressed();
}  // namespace detail

/// True when profiling is collecting. The disabled path of every hook is a
/// single relaxed atomic load plus branch.
inline bool enabled() {
  return detail::g_prof_enabled.load(std::memory_order_relaxed);
}

void enable();
void disable();
/// Zeroes every recorded count/time in place. Node storage (and any Node*
/// held by an open region) stays valid, so reset between runs is safe even
/// if instrumented threads are mid-flight — their open regions simply
/// contribute to the fresh counts when they close.
void reset();

/// RAII scoped region: aggregates into the per-thread call tree keyed by the
/// full path of enclosing regions. Trainers wrap step phases; benches wrap
/// whole workloads so the report's exclusive times sum to the profiled wall
/// time.
class ProfRegion {
 public:
  explicit ProfRegion(const char* name)
      : active_(enabled() && !detail::suppressed()) {
    if (!active_) return;
    node_ = detail::enter(name);
    begin_ns_ = detail::now_ns();
  }
  ~ProfRegion() {
    if (active_) detail::leave(node_, begin_ns_, 0, 0, /*kernel=*/false);
  }
  ProfRegion(const ProfRegion&) = delete;
  ProfRegion& operator=(const ProfRegion&) = delete;

  bool active() const { return active_; }

 private:
  bool active_;
  detail::Node* node_ = nullptr;
  std::int64_t begin_ns_ = 0;
};

/// RAII cost-reporting hook for one tensor-kernel invocation. Records wall
/// time like ProfRegion and additionally attributes FLOPs and bytes moved
/// (computed by the caller from the operand shapes — see the kernel cost
/// model in docs/observability.md). Construct immediately before the kernel
/// loop and let it close right after, so nested op calls never land inside.
class KernelScope {
 public:
  KernelScope(const char* name, std::int64_t flops, std::int64_t bytes,
              const char* suffix = nullptr)
      : active_(enabled() && !detail::suppressed()) {
    if (!active_) return;
    flops_ = flops;
    bytes_ = bytes;
    node_ = detail::enter(name, suffix);
    begin_ns_ = detail::now_ns();
  }
  ~KernelScope() {
    if (active_) detail::leave(node_, begin_ns_, flops_, bytes_, true);
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  bool active() const { return active_; }

  /// Replaces the attributed cost — for kernels (neighbor search) whose
  /// work is only known once they ran.
  void cost(std::int64_t flops, std::int64_t bytes) {
    if (!active_) return;
    flops_ = flops;
    bytes_ = bytes;
  }

 private:
  bool active_;
  detail::Node* node_ = nullptr;
  std::int64_t begin_ns_ = 0;
  std::int64_t flops_ = 0;
  std::int64_t bytes_ = 0;
};

/// Measured machine peaks the roofline fractions are computed against.
/// Calibrated once per process on first use with the same kernel shapes the
/// micro_tensor bench exercises: a cache-blocked ikj matmul for GFLOP/s and
/// a streaming triad for GB/s, both run through the intra-op thread pool.
struct Calibration {
  double peak_gflops = 0;  ///< achieved dense-matmul FLOP rate
  double peak_gbps = 0;    ///< achieved streaming-triad byte rate
  int threads = 1;         ///< pool lanes the calibration ran with
};

/// The cached per-process calibration (measured on first call, ~50 ms).
/// Excluded from the profile via the suppression guard.
const Calibration& calibration();

/// Cheap aggregate over every kernel recorded so far — the per-step profile
/// snapshot the trainers put into StepTelemetry.
struct Totals {
  std::int64_t kernel_calls = 0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  double kernel_seconds = 0;
};
Totals totals();

/// One call-tree path, pre-order. `path` joins region names with ';' (the
/// collapsed-stack separator), `exclusive_seconds` is inclusive minus the
/// children's inclusive time.
struct TreeRow {
  std::string path;
  std::string name;
  int depth = 0;
  std::int64_t calls = 0;
  double inclusive_seconds = 0;
  double exclusive_seconds = 0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
};

/// Per-kernel cost row, aggregated by kernel name across every call site and
/// thread, with achieved rates and the roofline comparison against the
/// calibrated peaks.
struct KernelRow {
  std::string name;
  std::int64_t calls = 0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  double seconds = 0;
  double gflops = 0;           ///< achieved, flops / seconds / 1e9
  double gbps = 0;             ///< achieved, bytes / seconds / 1e9
  double intensity = 0;        ///< FLOP/byte
  double attainable_gflops = 0;  ///< min(peak_gflops, intensity * peak_gbps)
  /// Achieved fraction of the roofline: gflops / attainable_gflops, or for
  /// pure data-movement kernels (flops == 0) gbps / peak_gbps.
  double roofline_fraction = 0;
};

/// Snapshot of everything the profiler knows, merged across threads.
struct Report {
  std::vector<TreeRow> tree;      ///< pre-order; depth-0 rows are top level
  std::vector<KernelRow> kernels;  ///< sorted by seconds, descending
  Calibration machine;

  double total_seconds() const;  ///< sum of top-level inclusive times

  /// Human-readable report: roofline table plus top-N hotspots by
  /// exclusive time.
  std::string to_text(std::size_t top_n = 10) const;
  /// Machine-readable report embedded into BENCH_*.json.
  std::string to_json() const;
  /// Collapsed-stack (Brendan Gregg flamegraph.pl) format: one line per
  /// path, weight = exclusive microseconds.
  std::string to_collapsed() const;
  /// Top-N rows by exclusive time (ties broken by path for determinism).
  std::vector<TreeRow> hotspots(std::size_t top_n) const;
};

/// Builds the merged report. `with_calibration` controls whether the (lazy,
/// one-time) machine calibration runs; pass false where peaks are irrelevant
/// and the ~50 ms matters (unit tests).
Report report(bool with_calibration = true);

}  // namespace sgnn::obs::prof
