#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sgnn::obs {

/// Monotonic event/byte counter. Updates are relaxed atomics: hot paths
/// (collectives, batch assembly) pay one fetch_add.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (loss, learning rate, throughput).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with lock-free observation. Bucket i counts values
/// in (bounds[i-1], bounds[i]]; a final overflow bucket catches the rest.
/// Quantiles are extracted from the snapshot by linear interpolation within
/// the owning bucket, clamped by the observed min/max for the edge buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// q in [0, 1]; 0.5 -> median. Returns 0 when empty.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;
  void reset();

  /// Geometric ladder lo, lo*factor, ... covering [lo, hi] — the right shape
  /// for durations spanning microseconds to minutes.
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                double factor);
  /// Default ladder for seconds-valued timings: 1 us .. ~1000 s, factor 2.
  static std::vector<double> default_seconds_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Human-readable dump (one instrument per line, histograms with
  /// count/mean/p50/p95/p99).
  std::string to_text() const;
  /// Machine-readable dump for benches and the scaling sweep.
  std::string to_json() const;
};

/// Process-global named-instrument registry. Lookup takes a mutex (cache the
/// reference in hot loops if it matters); the returned references stay valid
/// for the process lifetime — reset() zeroes values without unregistering.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds are fixed at first registration; later calls with different
  /// bounds return the existing histogram unchanged. Empty bounds select
  /// Histogram::default_seconds_bounds().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;
  /// Zeroes every instrument, keeping registrations (and references) alive.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sgnn::obs
