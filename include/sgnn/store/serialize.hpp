#pragma once

#include <cstdint>
#include <istream>
#include <ostream>

#include "sgnn/graph/graph.hpp"

namespace sgnn {

/// Binary graph record layout (little-endian, fixed width):
///   u64 node_count, u64 edge_count, f64 energy, f64 dipole,
///   3 x f64 cell, u8 periodic,
///   node_count x i32 species,
///   node_count x 3 x f64 positions,
///   node_count x 3 x f64 forces,
///   edge_count x 2 x i64 endpoints,
///   edge_count x 3 x f64 displacements.
/// MolecularGraph::serialized_bytes() mirrors this layout byte for byte.
void write_graph_record(std::ostream& out, const MolecularGraph& graph);

/// Reads one record; throws Error on truncated or malformed input.
MolecularGraph read_graph_record(std::istream& in);

/// CRC-32 (IEEE 802.3 polynomial) used by the bp container for integrity.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace sgnn
