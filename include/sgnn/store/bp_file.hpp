#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sgnn/graph/graph.hpp"

namespace sgnn {

/// Single-file graph container inspired by ADIOS BP: a stream of variable-
/// length records followed by a footer holding the record index and a CRC,
/// so readers can (a) random-access any graph and (b) detect truncation or
/// corruption before handing data to training. This is the on-disk format
/// the dataset pipeline uses in place of the paper's ADIOS files.
///
/// Layout:
///   "SGBP" magic | u32 version | records... |
///   footer: u64 record_count | record_count x (u64 offset, u64 size) |
///           u32 crc of the footer index | u64 footer_size | "SGBP"
class BpWriter {
 public:
  explicit BpWriter(const std::string& path);
  ~BpWriter();
  BpWriter(const BpWriter&) = delete;
  BpWriter& operator=(const BpWriter&) = delete;

  /// Appends one graph record; returns its index.
  std::size_t append(const MolecularGraph& graph);

  /// Writes the footer and closes the file. Must be called exactly once;
  /// a file without a footer is detected as corrupt by BpReader.
  void finalize();

  std::size_t record_count() const { return offsets_.size(); }
  /// Bytes written so far (records only, before the footer).
  std::uint64_t payload_bytes() const;

 private:
  std::ofstream out_;
  std::string path_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> offsets_;
  bool finalized_ = false;
};

/// Random-access reader for BpWriter files; validates magic, version and
/// footer CRC at open time.
class BpReader {
 public:
  explicit BpReader(const std::string& path);

  std::size_t size() const { return index_.size(); }
  MolecularGraph read(std::size_t record) const;
  /// Serialized size of one record (what DDStore counts as traffic).
  std::uint64_t record_bytes(std::size_t record) const;

 private:
  mutable std::ifstream in_;
  std::string path_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index_;
};

}  // namespace sgnn
