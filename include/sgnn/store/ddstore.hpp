#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sgnn/graph/graph.hpp"

namespace sgnn {

/// In-memory distributed data store modeled on DDStore (Choi et al.,
/// SC'23 workshops): the dataset is sharded across ranks, each rank holds
/// its shard resident, and a rank needing a sample owned elsewhere pulls it
/// over the interconnect. Here every shard lives in one address space, but
/// ownership and the local/remote distinction are tracked exactly, giving
/// the training benches real traffic numbers for the data-loading path.
///
/// Sharding is round-robin by global index, DDStore's default placement.
class DDStore {
 public:
  explicit DDStore(int num_ranks);

  /// Distributes graphs across shards (appends to existing content).
  void insert(std::vector<MolecularGraph> graphs);

  std::int64_t size() const { return total_; }
  int num_ranks() const { return num_ranks_; }
  int owner_rank(std::int64_t index) const;

  /// Access from `requesting_rank`; counts a remote fetch (and its bytes)
  /// when the owner differs. Thread-safe after insertion is complete.
  const MolecularGraph& fetch(int requesting_rank, std::int64_t index) const;

  struct TrafficStats {
    std::uint64_t local_hits = 0;
    std::uint64_t remote_fetches = 0;
    std::uint64_t remote_bytes = 0;
  };
  TrafficStats stats() const;
  void reset_stats();

  /// Graphs resident on one rank (for shard-balance reporting).
  std::int64_t shard_size(int rank) const;

 private:
  int num_ranks_;
  std::int64_t total_ = 0;
  /// shards_[rank][slot]; global index g lives at shards_[g % R][g / R].
  std::vector<std::vector<MolecularGraph>> shards_;
  mutable std::atomic<std::uint64_t> local_hits_{0};
  mutable std::atomic<std::uint64_t> remote_fetches_{0};
  mutable std::atomic<std::uint64_t> remote_bytes_{0};
};

}  // namespace sgnn
