#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "sgnn/tensor/tensor.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn::ckpt {

/// Crash-safe training-state checkpointing.
///
/// A checkpoint is a versioned, CRC-verified *snapshot* file ("SGCK"
/// container, a sibling of the SGMD model format) holding named byte
/// sections — model parameters, optimizer moments, sampler RNG state,
/// schedule position. The trainers assemble and consume the sections; this
/// layer owns the container format, the atomic write protocol
/// (tmp file + fsync + rename) and retention/recovery of the last-known-good
/// checkpoint. See docs/fault-tolerance.md for the full protocol.
///
/// File layout (native-endian, like every sgnn container):
///   "SGCK" | u32 version | u64 payload_size | payload | u32 crc | "SGCK"
/// payload:
///   u64 section_count | per section: u64 name_size, name bytes,
///                                    u64 data_size, data bytes

/// Trainer-facing knobs; embedded in TrainOptions / DistTrainOptions.
struct CheckpointOptions {
  /// Write a snapshot every N optimizer steps; 0 disables checkpointing.
  std::int64_t every_steps = 0;
  /// Directory snapshots are written to (created on first save).
  std::string directory;
  /// Verified snapshots retained on disk. At least 2, so a corrupted newest
  /// checkpoint always leaves a previous good one to fall back on.
  int keep_last = 2;
  /// Directory (or single snapshot file) to resume from; empty starts
  /// fresh. Resume restores training bit-identically: train N steps is
  /// indistinguishable from train k, crash, resume, train N-k.
  std::string resume_from;
  /// Fault injection for the crash/restart tests: the trainer throws
  /// SimulatedCrash once this many optimizer steps have completed
  /// (after the step's checkpoint hook). Negative disables.
  std::int64_t crash_after_step = -1;
  /// Fault injection INSIDE the overlap window: during optimizer step N
  /// (1-based), SimulatedCrash is thrown after every gradient bucket has
  /// been posted but before any is drained — no parameter or moment has
  /// been touched, so resume must be bit-identical (the crash-during-
  /// overlap checkpoint test). Every rank throws at the same step, so no
  /// rank is stranded in a collective. Only meaningful with bucketing on
  /// (DistTrainOptions.bucket_bytes > 0). Non-positive disables.
  std::int64_t crash_in_overlap_step = -1;
};

/// Thrown by the trainers' fault-injection hook (CheckpointOptions::
/// crash_after_step). Deliberately NOT an sgnn::Error: a simulated crash is
/// not a data/precondition failure, and corruption tests asserting on Error
/// must not conflate the two.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(std::int64_t step)
      : std::runtime_error("simulated crash after step " +
                           std::to_string(step)),
        step_(step) {}
  std::int64_t step() const { return step_; }

 private:
  std::int64_t step_ = 0;
};

/// Throws SimulatedCrash when `completed_steps` reaches the configured
/// crash point. Called by both trainers right after their checkpoint hook.
inline void maybe_crash(const CheckpointOptions& options,
                        std::int64_t completed_steps) {
  if (options.crash_after_step >= 0 &&
      completed_steps >= options.crash_after_step) {
    throw SimulatedCrash(completed_steps);
  }
}

/// Byte image of a trivially-copyable value (the pod sections: RNG state,
/// counters). memcpy-based, so no pointer of the wrong type is formed.
template <typename T>
std::string pod_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::string bytes(sizeof(T), '\0');
  std::memcpy(bytes.data(), &value, sizeof(T));
  return bytes;
}

template <typename T>
T pod_from_bytes(const std::string& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  SGNN_CHECK(bytes.size() == sizeof(T),
             "snapshot section holds " << bytes.size() << " bytes, expected "
                                       << sizeof(T));
  T value;
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

/// Accumulates named sections and serializes them into a snapshot payload.
/// Sections are kept in name order, so payload bytes are deterministic
/// regardless of insertion order.
class SnapshotBuilder {
 public:
  void add_bytes(const std::string& name, std::string bytes);
  void add_u64(const std::string& name, std::uint64_t value);
  void add_i64(const std::string& name, std::int64_t value);
  void add_f64(const std::string& name, double value);
  /// Raw real[] image (optimizer moments, flattened parameters).
  void add_reals(const std::string& name, const real* data, std::size_t count);
  void add_u64s(const std::string& name,
                const std::vector<std::uint64_t>& values);

  /// Serialized payload (the body the container CRC covers).
  std::string payload() const;

 private:
  std::map<std::string, std::string> sections_;
};

/// Parses a snapshot payload back into sections. Every accessor throws
/// Error on a missing section or a size mismatch — a corrupt or
/// wrong-kind snapshot can never be half-applied.
class SnapshotView {
 public:
  explicit SnapshotView(const std::string& payload);

  bool has(const std::string& name) const;
  const std::string& bytes(const std::string& name) const;
  std::uint64_t u64(const std::string& name) const;
  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;
  std::vector<real> reals(const std::string& name) const;
  std::vector<std::uint64_t> u64s(const std::string& name) const;

 private:
  std::map<std::string, std::string> sections_;
};

/// Writes `payload` to `path` crash-safely: the container goes to a
/// temporary sibling first, is fsync'd, and only then renamed over `path`
/// (the directory entry is fsync'd too). A crash at any point leaves either
/// the previous file or the complete new one — never a torn write under the
/// final name.
void write_snapshot_file(const std::string& path, const std::string& payload);

/// Reads and verifies a snapshot container; throws Error on missing file,
/// bad magic/version, truncation, or CRC mismatch. The payload allocation
/// is bounded by the actual file size, so a corrupt header cannot trigger
/// a multi-gigabyte allocation.
std::string read_snapshot_file(const std::string& path);

/// Owns a checkpoint directory: writes step-stamped snapshots atomically,
/// prunes old ones (keeping `keep_last` verified files), and recovers the
/// newest readable snapshot, skipping corrupt candidates. Obs metrics:
/// ckpt.writes / ckpt.bytes / ckpt.write_seconds on save,
/// ckpt.restores / ckpt.corrupt_skipped on load.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string directory, int keep_last = 2);

  const std::string& directory() const { return directory_; }

  /// Serializes + writes `payload` as the checkpoint for (1-based)
  /// completed step `step`; applies retention. Returns the final path.
  std::string save(std::uint64_t step, const std::string& payload);

  struct Loaded {
    std::uint64_t step = 0;  ///< parsed from the file name
    std::string payload;
    std::string path;
  };

  /// Newest verified snapshot under `location` — a checkpoint directory or
  /// a single snapshot file. Candidates that fail verification (truncated,
  /// bit-flipped, torn) are skipped with a warning, falling back to the
  /// next older checkpoint. nullopt when nothing readable exists.
  static std::optional<Loaded> load_latest(const std::string& location);

 private:
  std::string directory_;
  int keep_last_;
};

}  // namespace sgnn::ckpt
