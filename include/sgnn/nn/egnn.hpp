#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/layers.hpp"
#include "sgnn/nn/module.hpp"

namespace sgnn {

/// Interaction kernel of a message-passing layer. HydraGNN's "flexible
/// message passing neural network layers" (Sec. II-B) support multiple
/// kernels behind one model; the paper's experiments use the EGNN kernel,
/// the others are provided for the kernel ablation
/// (bench/ablation_kernels).
enum class MessagePassingKernel : int {
  kEGNN = 0,    ///< Satorras et al. equivariant messages + coordinate update
  kSchNet = 1,  ///< continuous-filter convolution: phi_v(h_j) * W(rbf)
  kGAT = 2,     ///< distance-aware attention over radius-graph edges
};

const char* kernel_name(MessagePassingKernel kernel);

/// How node-level forces are produced.
enum class ForceHead : int {
  /// Equivariant per-edge decomposition F_i = sum_j unit_ij * phi_F(m_ij)
  /// (this repo's default; exactly E(3)-equivariant).
  kEquivariantEdge = 0,
  /// HydraGNN-faithful node-level head: F_i = MLP(h_i) on the final node
  /// features — the paper's "node-level property prediction" head. NOT
  /// equivariant (invariant features cannot produce covariant vectors),
  /// and fully exposed to over-smoothing of h, which is what makes the
  /// paper's Fig. 5 depth degradation visible.
  kNodeMLP = 1,
};

const char* force_head_name(ForceHead head);

/// Architecture hyperparameters of the EGNN backbone + HydraGNN-style
/// heads. The scaling experiments vary only `hidden_dim` (width) and
/// `num_layers` (depth), exactly as Sec. III-B of the paper prescribes.
struct ModelConfig {
  std::int64_t hidden_dim = 64;   ///< neurons per layer ("width")
  std::int64_t num_layers = 3;    ///< message-passing steps ("depth")
  /// Species vocabulary (atomic-number upper bound).
  std::int64_t num_species = 96;
  /// Gaussian radial-basis expansion of edge lengths fed to phi_e (the
  /// standard edge featurization of ML interatomic potentials).
  std::int64_t num_rbf = 8;
  /// Interaction cutoff the radial basis spans; must match the radius used
  /// to build the graphs.
  double cutoff = 3.5;
  /// Residual node update h' = h + phi_h(...). Turning it off makes the
  /// over-smoothing collapse (Fig. 5) more pronounced.
  bool residual = true;
  /// Step size of the equivariant coordinate update.
  double coord_scale = 0.1;
  /// Interaction kernel (paper: kEGNN).
  MessagePassingKernel kernel = MessagePassingKernel::kEGNN;
  /// Force head (paper: kNodeMLP via HydraGNN; default here is the
  /// equivariant extension).
  ForceHead force_head = ForceHead::kEquivariantEdge;
  /// Adds a third, graph-level head predicting the dipole-moment magnitude
  /// (HydraGNN-style multi-task learning; see bench/ablation_multitask).
  bool predict_dipole = false;
  std::uint64_t seed = 0xE6AA;    ///< parameter-init seed

  /// Total parameter count of a model with this config (closed form,
  /// verified against Module::num_parameters in tests).
  std::int64_t parameter_count() const;

  /// Finds the hidden_dim whose parameter_count is closest to `target`
  /// at fixed depth — how the sweeps hit "0.1M / 1M / ... params".
  static ModelConfig for_parameter_budget(std::int64_t target_params,
                                          std::int64_t num_layers);
};

class GraphParallelHook;
class ShardedGradReducer;

/// One E(n)-equivariant message-passing layer (Satorras et al., ICML'21):
///   m_ij   = phi_e(h_i, h_j, rbf(|x_i - x_j|))
///   x_i'   = x_i + (1/deg_i) * sum_j (x_i - x_j) * phi_x(m_ij)
///   h_i'   = h_i + phi_h(h_i, (1/deg_i) * sum_j m_ij)
/// plus an equivariant per-edge force decomposition
///   F_i'   = F_i + sum_j unit(x_i - x_j) * phi_F(m_ij)
/// feeding the node-level force head: the gate phi_F is invariant and the
/// unit bond vector is equivariant, so predicted forces transform exactly
/// like coordinates (verified by the equivariance property tests).
class EGNNLayer : public Module {
 public:
  EGNNLayer(const ModelConfig& config, Rng& rng);

  /// Static per-batch edge context (no autograd participation). Under graph
  /// parallelism (sgnn::gpar) the arrays are LOCAL: num_nodes counts this
  /// rank's owned nodes, edge_* span its edge slice, and `halo` supplies
  /// the ghost rows that edge_src values >= num_nodes refer to.
  struct EdgeContext {
    const std::vector<std::int64_t>* edge_src = nullptr;
    const std::vector<std::int64_t>* edge_dst = nullptr;
    Tensor edge_shift;    ///< (E, 3)
    Tensor inv_degree;    ///< (N, 1), 1/max(deg, 1)
    std::int64_t num_nodes = 0;
    /// Non-null when this context describes one rank's partition: the layer
    /// sources src-side rows through the hook (which exchanges boundary
    /// rows with the other ranks) instead of a local gather.
    GraphParallelHook* halo = nullptr;
  };

  /// `state` packs [h | x | F] as (N, hidden + 6); returns the new state.
  Tensor forward(const Tensor& state, const EdgeContext& context) const;

 private:
  std::int64_t hidden_;
  std::int64_t num_rbf_;
  real cutoff_;
  bool residual_;
  real coord_scale_;
  MessagePassingKernel kernel_;
  std::unique_ptr<MLP> phi_e_;  ///< message MLP (EGNN) / attention (GAT)
  std::unique_ptr<MLP> phi_x_;  ///< coordinate gate (EGNN only)
  std::unique_ptr<MLP> phi_h_;  ///< node update
  std::unique_ptr<MLP> phi_f_;  ///< per-edge force gate
  std::unique_ptr<MLP> phi_v_;  ///< value transform (SchNet/GAT)
  std::unique_ptr<MLP> phi_w_;  ///< filter generator (SchNet)
};

/// Rank-local services a graph-parallel forward needs from the partition /
/// communication layer (implemented by sgnn::gpar::HaloExchanger, which
/// lives in the train module — this interface keeps nn free of comm).
///
/// The contract every method shares: inputs are this rank's OWNED node rows
/// (global order restricted to the owned range), and anything returned is
/// bit-identical to what the unpartitioned forward would have produced for
/// the same rows — see docs/graph-parallelism.md for the argument.
class GraphParallelHook {
 public:
  virtual ~GraphParallelHook() = default;

  /// Owned-node count / inputs of this rank's shard.
  virtual std::int64_t num_owned() const = 0;
  virtual const std::vector<int>& owned_species() const = 0;
  virtual const Tensor& owned_positions() const = 0;
  /// Local edge context (edge_src/edge_dst in local ids, halo == this).
  virtual const EGNNLayer::EdgeContext& edge_context() const = 0;

  /// Per-edge src-side coordinate rows (E_local, 3). Posts the boundary
  /// exchange for BOTH x and h, waits only for x; the h rows keep flying
  /// while the layer computes distances and radial features, and
  /// select_src_h collects them (that compute window is what hides the
  /// halo latency).
  virtual Tensor select_src_x(const Tensor& x, const Tensor& h) = 0;
  /// Per-edge src-side feature rows (E_local, hidden); waits the h
  /// exchange posted by the preceding select_src_x.
  virtual Tensor select_src_h(const Tensor& h) = 0;

  /// Replicates a sharded per-node tensor: rank-order all-gather of owned
  /// rows = the full (num_nodes, cols) tensor in global node order. Its
  /// backward slices the rank's own rows back out (no communication).
  virtual Tensor all_gather_rows(const Tensor& owned) = 0;

  /// Fold-continuation reducer armed around the sharded backbone so leaf
  /// parameter gradients come out replicated and bit-exact.
  virtual ShardedGradReducer* reducer() = 0;
};

/// The full model: species embedding, EGNN backbone, and the two HydraGNN
/// output heads (graph-level energy, node-level forces).
class EGNNModel : public Module {
 public:
  explicit EGNNModel(const ModelConfig& config);

  struct Output {
    Tensor energy;  ///< (G, 1)
    Tensor forces;  ///< (N, 3)
    Tensor dipole;  ///< (G, 1); undefined unless config.predict_dipole
  };

  struct ForwardOptions {
    /// Wrap each EGNN layer in an activation checkpoint (Sec. V-B).
    bool activation_checkpointing = false;
    /// Non-null runs the graph-parallel forward: the backbone processes
    /// only this rank's owned nodes (ghost rows arriving through the
    /// hook's halo exchange), then the readout replicates the final node
    /// features so energies/forces/loss come out FULL and bit-identical
    /// to the unpartitioned forward on every rank.
    GraphParallelHook* graph_parallel = nullptr;
  };

  Output forward(const GraphBatch& batch) const {
    return forward(batch, ForwardOptions{});
  }
  Output forward(const GraphBatch& batch, const ForwardOptions& options) const;

  const ModelConfig& config() const { return config_; }

  /// Mean node-feature variance after the backbone — the over-smoothing
  /// metric reported by the depth/width bench (collapses toward 0 as
  /// depth grows past the useful range).
  double last_feature_spread() const { return last_feature_spread_; }

 private:
  Output forward_graph_parallel(const GraphBatch& batch,
                                const ForwardOptions& options) const;

  ModelConfig config_;
  std::unique_ptr<Embedding> embedding_;
  std::vector<std::unique_ptr<EGNNLayer>> layers_;
  std::unique_ptr<MLP> energy_head_;
  std::unique_ptr<MLP> force_head_;   ///< only for ForceHead::kNodeMLP
  std::unique_ptr<MLP> dipole_head_;  ///< only when predict_dipole
  mutable double last_feature_spread_ = 0.0;
};

}  // namespace sgnn
