#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// Base class for neural-network building blocks. Owns no tensor directly;
/// concrete modules register their parameter leaves and child modules so
/// parameter collection, gradient clearing, and counting work uniformly.
///
/// Parameters must be registered at construction time from storage tagged
/// MemCategory::kWeight (register_parameter asserts the tensor is a leaf
/// requiring grad).
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  // Registration stores addresses, so modules are pinned: hold them by
  // unique_ptr when a container is needed.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = delete;
  Module& operator=(Module&&) = delete;

  /// All parameter leaves of this module and its children, in registration
  /// order (stable across runs — optimizers rely on this ordering).
  std::vector<Tensor> parameters() const;

  /// Total number of scalar parameters.
  std::int64_t num_parameters() const;

  /// Clears accumulated gradients on every parameter.
  void zero_grad();

  /// Copies parameter values from another module with identical topology
  /// (used to replicate models across simulated ranks).
  void copy_parameters_from(const Module& other);

 protected:
  /// Registers an owned parameter leaf. The tensor must require grad.
  void register_parameter(Tensor parameter);
  /// Registers a child whose parameters are folded into ours. The child
  /// must outlive this module (members registered in their declaration
  /// order satisfy this).
  void register_module(Module& child);

 private:
  std::vector<Tensor> parameters_;
  std::vector<Module*> children_;
};

/// Helper for parameter initialization: Glorot/Xavier-uniform fan-based
/// bound, the init HydraGNN uses for its message-passing MLPs.
Tensor glorot_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

}  // namespace sgnn
