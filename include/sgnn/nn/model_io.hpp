#pragma once

#include <memory>
#include <string>

#include "sgnn/nn/egnn.hpp"

namespace sgnn {

/// Model checkpointing: persists a ModelConfig plus every parameter tensor
/// to a single CRC-guarded binary file ("SGMD" container, a sibling of the
/// bp graph format), and restores it. Training-state checkpointing of the
/// optimizer is deliberately separate (the sgnn::ckpt snapshots, which embed
/// this payload as their "model" section) so a saved model can be shipped
/// for inference without its Adam moments.
///
/// File layout:
///   "SGMD" | u32 version | config fields | u64 param_count |
///   per parameter: u64 rank, i64 dims..., f64 data... | u32 crc | "SGMD"
void save_model(const EGNNModel& model, const std::string& path);

/// Reconstructs the model (config + weights). Throws Error on a missing,
/// truncated, corrupted, or incompatible file. (Modules are pinned in
/// memory, hence the unique_ptr.)
std::unique_ptr<EGNNModel> load_model(const std::string& path);

/// Reads just the config header (cheap; no parameter data is touched).
ModelConfig peek_model_config(const std::string& path);

/// Restores weights into an existing model whose config must match.
void load_parameters_into(EGNNModel& model, const std::string& path);

/// Raw SGMD payload bytes (config + parameters, no container framing).
/// Embedded by sgnn::ckpt training snapshots as their "model" section.
std::string model_payload_bytes(const EGNNModel& model);

/// Restores parameters from payload bytes produced by model_payload_bytes;
/// throws Error on architecture mismatch or truncation.
void load_model_payload(EGNNModel& model, const std::string& payload);

}  // namespace sgnn
