#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/layers.hpp"
#include "sgnn/nn/module.hpp"

namespace sgnn {

/// Configuration of the graph-Transformer comparison model.
struct TransformerConfig {
  std::int64_t hidden_dim = 64;
  std::int64_t num_layers = 3;
  std::int64_t num_species = 96;
  std::int64_t num_rbf = 8;
  /// Span of the distance featurization. Unlike the EGNN this is NOT an
  /// interaction cutoff — attention covers every intra-graph pair.
  double rbf_span = 8.0;
  std::uint64_t seed = 0x7A6E;

  std::int64_t parameter_count() const;
};

/// Graph Transformer for atomistic property prediction — the architecture
/// class the paper conjectures could lift the GNN locality bottleneck
/// (Sec. IV-A: "Transformer models rely on attention mechanisms, which can
/// adaptively learn connections between different input samples ... GNN
/// architectures are inherently limited by their locality constraints").
///
/// Each layer attends over ALL ordered intra-graph atom pairs (not just the
/// radius graph), with distance-aware attention in the spirit of
/// Graphormer's spatial bias / GATv2 gating:
///   e_ij   = 5 * tanh( phi_a(h_i, h_j, rbf(|r_ij|)) )      (bounded logit)
///   a_ij   = softmax_j(e_ij)                                (per receiver)
///   h_i'   = h_i + phi_h( h_i, sum_j a_ij * phi_v(h_i, h_j, rbf) )
/// Forces use the same equivariant pairwise decomposition as the EGNN:
///   F_i   += sum_j a_ij * unit(r_ij) * phi_F(...)
/// All attention inputs are pairwise distances, so predicted energies stay
/// E(3)-invariant and forces equivariant — verified by tests.
///
/// Periodic note: non-neighbor pair distances use raw Cartesian differences
/// (the minimum-image shift is only defined for radius-graph edges); for
/// the molecular sources this is exact, for periodic cells it is the same
/// approximation Graphormer-style models make.
class GraphTransformer : public Module {
 public:
  explicit GraphTransformer(const TransformerConfig& config);

  struct Output {
    Tensor energy;  ///< (G, 1)
    Tensor forces;  ///< (N, 3)
  };

  Output forward(const GraphBatch& batch) const;

  const TransformerConfig& config() const { return config_; }

  /// Attention weights of the last forward pass' FIRST layer, one value per
  /// generated pair (diagnostics; rows sum to 1 per receiving atom).
  const std::vector<real>& last_attention() const { return last_attention_; }
  const std::vector<std::int64_t>& last_pair_dst() const {
    return last_pair_dst_;
  }

 private:
  struct Layer {
    std::unique_ptr<MLP> phi_a;  ///< attention logit
    std::unique_ptr<MLP> phi_v;  ///< value transform
    std::unique_ptr<MLP> phi_h;  ///< node update
    std::unique_ptr<MLP> phi_f;  ///< force gate
  };

  TransformerConfig config_;
  std::unique_ptr<Embedding> embedding_;
  std::vector<Layer> layers_;
  std::unique_ptr<MLP> energy_head_;
  mutable std::vector<real> last_attention_;
  mutable std::vector<std::int64_t> last_pair_dst_;
};

}  // namespace sgnn
