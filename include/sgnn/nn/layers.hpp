#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sgnn/nn/module.hpp"
#include "sgnn/tensor/ops.hpp"

namespace sgnn {

/// Activation functions selectable in MLP stacks.
enum class Activation { kNone, kReLU, kSiLU, kTanh };

/// Applies the selected activation.
Tensor apply_activation(const Tensor& x, Activation activation);

/// Fully-connected layer y = x W + b.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& x) const;

  std::int64_t in_features() const { return weight_.dim(0); }
  std::int64_t out_features() const { return weight_.dim(1); }

 private:
  Tensor weight_;  ///< (in, out)
  Tensor bias_;    ///< (1, out); undefined when bias is disabled
};

/// Stack of Linear layers with a hidden activation; optionally activated
/// output. This is the phi_e / phi_x / phi_h building block of EGNN.
class MLP : public Module {
 public:
  /// `dims` = {in, hidden..., out}; requires at least in and out.
  MLP(const std::vector<std::int64_t>& dims, Rng& rng,
      Activation hidden_activation = Activation::kSiLU,
      Activation output_activation = Activation::kNone);

  Tensor forward(const Tensor& x) const;

 private:
  // deque-like stability not needed: layers are stored indirectly so the
  // registered child pointers stay valid if the MLP itself is moved.
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_activation_;
  Activation output_activation_;
};

/// Lookup table mapping atomic numbers to learned feature vectors — the
/// species featurization of the EGNN input layer.
class Embedding : public Module {
 public:
  Embedding(std::int64_t num_entries, std::int64_t dim, Rng& rng);

  /// Rows of the table selected by `ids`; differentiable w.r.t. the table.
  Tensor forward(const std::vector<std::int64_t>& ids) const;
  Tensor forward(const std::vector<int>& ids) const;

 private:
  Tensor table_;  ///< (num_entries, dim)
};

}  // namespace sgnn
