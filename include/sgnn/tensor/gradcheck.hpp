#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// Outcome of a finite-difference gradient verification.
struct GradcheckResult {
  bool ok = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  ///< human-readable description of the worst entry
};

/// Verifies reverse-mode gradients of `fn` against central finite
/// differences.
///
/// The output is contracted with a fixed pseudo-random cotangent so that the
/// full Jacobian (not just its row sums) is exercised. Inputs that require
/// grad are perturbed element-by-element; double-precision tensors make a
/// tolerance of ~1e-6 reliable for the op sizes used in tests.
GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    const std::vector<Tensor>& inputs, double eps = 1e-6,
    double tolerance = 1e-6);

}  // namespace sgnn
