#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sgnn/tensor/memory_tracker.hpp"
#include "sgnn/tensor/shape.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {

/// Element type of every tensor. Double keeps finite-difference gradient
/// checks and long MD rollouts well-conditioned; all memory accounting is
/// relative, so the choice does not affect the reproduced breakdowns.
using real = double;

class Tensor;

namespace autograd {

/// True while operations should record the autograd graph (thread-local).
bool grad_enabled();

/// RAII guard disabling graph recording (inference / checkpointed forward).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// RAII guard re-enabling graph recording (checkpoint recomputation runs
/// inside the outer backward pass, where recording is otherwise off).
class EnableGradGuard {
 public:
  EnableGradGuard();
  ~EnableGradGuard();
  EnableGradGuard(const EnableGradGuard&) = delete;
  EnableGradGuard& operator=(const EnableGradGuard&) = delete;

 private:
  bool previous_;
};

/// Number of autograd Nodes currently alive across all threads. Inference
/// paths that promise "no tape" (serve, evaluation) pin that promise in
/// tests by asserting this stays flat across a guarded forward.
std::int64_t live_node_count();

/// One recorded operation. `inputs` keeps the producing subgraph (and thus
/// its activations) alive until backward consumes this node.
struct Node {
  Node();
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::string op_name;
  std::vector<Tensor> inputs;
  /// Maps the gradient w.r.t. this node's output to gradients w.r.t. each
  /// input (same order; an undefined Tensor means "no gradient").
  std::function<std::vector<Tensor>(const Tensor& grad_output)> backward;
};

/// Observer of leaf-gradient completion, keyed by the leaf's TensorImpl
/// address (the pointer `Tensor::impl().get()` yields — an identity token,
/// never dereferenced by the hook's installer). The OUTERMOST backward()
/// on the installing thread invokes the hook right after a leaf's final
/// gradient has been accumulated into its `.grad` buffer; this is what
/// lets the GradBucketer post a bucket's collective the moment the last
/// gradient in it is ready, mid-backward.
///
/// Contract for installers:
/// * Hooks fire for EVERY grad-requiring leaf of the outer graph — an
///   installer must ignore keys it does not recognize.
/// * Nested backward passes (activation-checkpoint recomputation) never
///   fire the hook: a leaf they touch may receive further contributions
///   later, so its gradient is not yet final. Parameters that reach the
///   loss ONLY through checkpointed segments (closure captures, not graph
///   edges) therefore never fire at all; consumers needing completeness
///   must sweep up unhooked leaves after backward() returns (the
///   bucketer's post_remaining()).
using LeafGradHook = std::function<void(const void* leaf)>;

/// RAII installer of the thread-local leaf-grad hook; restores the
/// previously installed hook (usually none) on destruction, so a hook
/// never leaks past the training step that installed it even on
/// exceptions.
class ScopedLeafGradHook {
 public:
  explicit ScopedLeafGradHook(LeafGradHook hook);
  ~ScopedLeafGradHook();
  ScopedLeafGradHook(const ScopedLeafGradHook&) = delete;
  ScopedLeafGradHook& operator=(const ScopedLeafGradHook&) = delete;

 private:
  LeafGradHook previous_;
};

}  // namespace autograd

namespace detail {

/// Reference-counted, memory-tracked buffer backing a Tensor.
class Storage {
 public:
  explicit Storage(std::size_t count);
  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  real* data() { return buffer_.data(); }
  const real* data() const { return buffer_.data(); }
  std::size_t count() const { return buffer_.size(); }

 private:
  std::vector<real> buffer_;
  MemCategory category_;
};

struct TensorImpl {
  Shape shape;
  std::shared_ptr<Storage> storage;
  bool requires_grad = false;
  bool graph_consumed = false;  ///< backward already released this graph
  std::shared_ptr<autograd::Node> grad_fn;  ///< set on non-leaf results
  std::shared_ptr<TensorImpl> grad;         ///< accumulated grad on leaves
};

}  // namespace detail

/// Dense row-major tensor with reverse-mode automatic differentiation.
///
/// Value-semantic handle to shared storage (copying a Tensor aliases the
/// data, mirroring the framework conventions the paper's stack relies on).
/// Operations are free functions in ops.hpp; they record autograd nodes
/// while autograd::grad_enabled() holds and any input requires gradients.
class Tensor {
 public:
  /// Undefined tensor (no storage); `defined()` is false.
  Tensor() = default;

  // -- Factories -----------------------------------------------------------
  static Tensor zeros(const Shape& shape);
  static Tensor ones(const Shape& shape);
  static Tensor full(const Shape& shape, real value);
  static Tensor scalar(real value);
  static Tensor from_vector(const std::vector<real>& values,
                            const Shape& shape);
  /// Standard-normal entries scaled by `stddev`.
  static Tensor randn(const Shape& shape, Rng& rng, real stddev = 1.0);
  static Tensor uniform(const Shape& shape, Rng& rng, real lo, real hi);

  // -- Introspection -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::size_t rank() const { return shape().rank(); }
  std::int64_t dim(std::size_t axis) const { return shape().dim(axis); }
  std::int64_t numel() const { return shape().numel(); }

  real* data();
  const real* data() const;
  std::vector<real> to_vector() const;
  /// Human-readable rendering ("Tensor[2, 3] {{1, 2, 3}, {4, 5, 6}}");
  /// large tensors are elided with an ellipsis after `max_elements`.
  std::string to_string(std::int64_t max_elements = 32) const;
  /// Value of a single-element tensor.
  real item() const;
  /// Element access for 2-D tensors (row, col); convenience for tests.
  real at(std::int64_t row, std::int64_t col) const;

  // -- Autograd ------------------------------------------------------------
  bool requires_grad() const;
  /// Marks a leaf as requiring gradients; returns *this for chaining.
  Tensor& set_requires_grad(bool value);
  bool is_leaf() const;
  /// Accumulated gradient of a leaf (undefined Tensor if none yet).
  Tensor grad() const;
  void zero_grad();

  /// Shares storage but severs the autograd history.
  Tensor detach() const;
  /// Deep copy of the data (no autograd history).
  Tensor clone() const;

  /// Runs reverse-mode differentiation from this tensor. `grad_output`
  /// defaults to ones (the tensor must be a scalar in that case). The graph
  /// is consumed: node inputs are released as backward passes them, which is
  /// what lets peak memory decay through the backward phase exactly as the
  /// paper's profile shows.
  void backward(const Tensor& grad_output = Tensor());

  // -- Internal (used by ops) ----------------------------------------------
  const std::shared_ptr<detail::TensorImpl>& impl() const { return impl_; }

  /// Allocates the result of an op and wires its autograd node when grad
  /// mode is on and any input requires grad.
  static Tensor make_result(
      const Shape& shape, std::vector<Tensor> inputs,
      std::function<std::vector<Tensor>(const Tensor&)> backward_fn,
      std::string op_name);

 private:
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<detail::TensorImpl> impl_;
};

}  // namespace sgnn
