#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace sgnn {

/// What a tensor allocation *is* from the training algorithm's point of
/// view. This is the axis along which the paper's Fig. 6 breaks down peak
/// memory (activations / weights / gradients / optimizer states).
enum class MemCategory : int {
  kActivation = 0,   ///< forward intermediates kept for backward
  kWeight = 1,       ///< model parameters
  kGradient = 2,     ///< parameter gradients
  kOptimizerState = 3,  ///< Adam moments, ZeRO shards
  kWorkspace = 4,    ///< transient scratch (data buffers, comm staging)
  kCount = 5,
};

const char* mem_category_name(MemCategory category);

/// Which stage of a training step is executing. Peak memory attribution by
/// phase is what lets the benches show the paper's observation that the
/// vanilla peak occurs at the start of the backward pass and shifts to the
/// weight-update phase once activation checkpointing is enabled.
enum class TrainPhase : int {
  kIdle = 0,
  kForward = 1,
  kBackward = 2,
  kOptimizer = 3,
  kCount = 4,
};

const char* train_phase_name(TrainPhase phase);

/// Per-category byte counts; used both for live usage and peak snapshots.
struct MemBreakdown {
  std::array<std::int64_t, static_cast<int>(MemCategory::kCount)> bytes{};

  std::int64_t total() const {
    std::int64_t t = 0;
    for (const auto b : bytes) t += b;
    return t;
  }
  std::int64_t of(MemCategory c) const { return bytes[static_cast<std::size_t>(c)]; }
  double fraction(MemCategory c) const {
    const auto t = total();
    return t == 0 ? 0.0 : static_cast<double>(of(c)) / static_cast<double>(t);
  }
};

/// Global accounting of every tensor-storage allocation, tagged by
/// category and phase. Thread-safe; the thread-local category/phase scopes
/// make tagging zero-boilerplate at call sites (see ScopedMemCategory /
/// ScopedTrainPhase).
///
/// This instrument stands in for CUDA memory profiling in the paper: the
/// ratios it reports (e.g. "activations are 76.9% of the vanilla peak") are
/// algorithmic properties of the training loop and carry over directly.
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void on_alloc(std::size_t bytes, MemCategory category);
  void on_free(std::size_t bytes, MemCategory category);

  /// Current live bytes, per category.
  MemBreakdown live() const;
  /// Breakdown captured at the moment of the highest total usage since the
  /// last reset_peak().
  MemBreakdown peak() const;
  /// Phase during which the peak was observed.
  TrainPhase peak_phase() const;
  std::int64_t peak_total() const;

  /// Highest total usage observed WHILE a given phase was active — the
  /// per-stage profile of the paper's Fig. 6(a) (forward / backward /
  /// weight-update peaks).
  std::int64_t peak_during(TrainPhase phase) const;

  /// Forgets the recorded peak but keeps live counters (which must track
  /// real allocations at all times).
  void reset_peak();

  static MemCategory current_category();
  static void set_current_category(MemCategory category);
  static TrainPhase current_phase();
  static void set_current_phase(TrainPhase phase);

 private:
  MemoryTracker() = default;

  mutable std::mutex mutex_;
  MemBreakdown live_;
  MemBreakdown peak_;
  TrainPhase peak_phase_ = TrainPhase::kIdle;
  std::array<std::int64_t, static_cast<std::size_t>(TrainPhase::kCount)>
      peak_by_phase_{};
};

/// RAII tag: tensor storage allocated inside the scope is accounted under
/// `category`.
class ScopedMemCategory {
 public:
  explicit ScopedMemCategory(MemCategory category)
      : previous_(MemoryTracker::current_category()) {
    MemoryTracker::set_current_category(category);
  }
  ~ScopedMemCategory() { MemoryTracker::set_current_category(previous_); }
  ScopedMemCategory(const ScopedMemCategory&) = delete;
  ScopedMemCategory& operator=(const ScopedMemCategory&) = delete;

 private:
  MemCategory previous_;
};

/// RAII registration of non-Tensor buffer bytes (collective staging,
/// flattened parameter copies) so the profiler sees the whole footprint of
/// a training step, not just tensor storage.
class ScopedBytes {
 public:
  ScopedBytes(std::size_t bytes, MemCategory category)
      : bytes_(bytes), category_(category) {
    MemoryTracker::instance().on_alloc(bytes_, category_);
  }
  ~ScopedBytes() { MemoryTracker::instance().on_free(bytes_, category_); }
  ScopedBytes(const ScopedBytes&) = delete;
  ScopedBytes& operator=(const ScopedBytes&) = delete;

 private:
  std::size_t bytes_;
  MemCategory category_;
};

/// RAII tag: marks the executing training phase for peak attribution.
class ScopedTrainPhase {
 public:
  explicit ScopedTrainPhase(TrainPhase phase)
      : previous_(MemoryTracker::current_phase()) {
    MemoryTracker::set_current_phase(phase);
  }
  ~ScopedTrainPhase() { MemoryTracker::set_current_phase(previous_); }
  ScopedTrainPhase(const ScopedTrainPhase&) = delete;
  ScopedTrainPhase& operator=(const ScopedTrainPhase&) = delete;

 private:
  TrainPhase previous_;
};

}  // namespace sgnn
