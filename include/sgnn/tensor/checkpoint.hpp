#pragma once

#include <functional>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// A differentiable segment: maps input tensors to one output tensor using
/// ops from ops.hpp.
using SegmentFn = std::function<Tensor(const std::vector<Tensor>&)>;

/// Activation checkpointing (Chen et al., arXiv:1604.06174) — the first of
/// the two LLM-style memory optimizations the paper ports to GNN training.
///
/// Runs `fn` WITHOUT recording the autograd graph, so every intermediate
/// activation inside the segment is freed as soon as the forward pass leaves
/// it. During backward the segment is re-executed with recording enabled to
/// rebuild exactly the local graph needed, trading ~one extra forward of
/// compute for the activation memory (the paper measures 58% peak reduction
/// at +10% step time; bench/fig6 reproduces both).
///
/// Gradients flow to every `inputs[i]` that requires grad; the checkpoint is
/// differentiable-transparent — tests assert bit-identical gradients versus
/// the unchekpointed segment.
Tensor checkpoint(const SegmentFn& fn, const std::vector<Tensor>& inputs);

}  // namespace sgnn
