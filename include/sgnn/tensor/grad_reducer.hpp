#pragma once

#include <cstdint>
#include <vector>

namespace sgnn {

class Tensor;

/// Continuation-style reducer for gradients of REPLICATED leaf parameters
/// whose activations are row-sharded across ranks (graph-parallel training,
/// sgnn::gpar). Every parameter-gradient kernel in this repo is a fold over
/// activation rows in ascending order (matmul_at_b is p-outermost, reduce_to
/// and scatter_rows_into accumulate in input order), and under the
/// partitioner the global row order is exactly the rank-order concatenation
/// of the local shards. A reducer therefore reproduces the single-rank
/// gradient BIT-identically by continuing the fold rank to rank instead of
/// summing per-rank partials (which would re-bracket the floating-point
/// sum). See docs/graph-parallelism.md.
///
/// The autograd ops capture the armed reducer at RECORD time and call it
/// from their backward closures, so the arming scope only needs to span the
/// forward pass (including activation-checkpoint recomputes, which re-record
/// on the same thread); the reducer object itself must outlive backward.
class ShardedGradReducer {
 public:
  virtual ~ShardedGradReducer() = default;

  /// Full dW = A_global^T @ G_global where `a` (m, k) and `grad` (m, n) are
  /// this rank's row shards; returns the replicated (k, n) gradient.
  virtual Tensor matmul_weight_grad(const Tensor& a, const Tensor& grad) = 0;

  /// Full (1, n) column sum of a row-sharded (m, n) gradient — the bias of
  /// a Linear applied to sharded rows.
  virtual Tensor rows_sum_grad(const Tensor& grad) = 0;

  /// Full (rows, cols) scatter of a row-sharded gradient into a replicated
  /// table (embedding backward); `index` holds this rank's local ids.
  virtual Tensor scatter_rows_grad(const Tensor& grad,
                                   const std::vector<std::int64_t>& index,
                                   std::int64_t rows, std::int64_t cols) = 0;
};

/// The reducer armed on the calling thread (nullptr outside graph-parallel
/// forward passes — the common case, checked once per op record).
ShardedGradReducer* current_sharded_grad_reducer();

/// Arms `reducer` on this thread for the scope's lifetime; restores the
/// previous value on destruction. Pass nullptr to disarm a nested region
/// (the replicated readout/head section of a graph-parallel forward, whose
/// activations are NOT sharded and must not be ring-reduced).
class ScopedShardedGradReducer {
 public:
  explicit ScopedShardedGradReducer(ShardedGradReducer* reducer);
  ~ScopedShardedGradReducer();
  ScopedShardedGradReducer(const ScopedShardedGradReducer&) = delete;
  ScopedShardedGradReducer& operator=(const ScopedShardedGradReducer&) =
      delete;

 private:
  ShardedGradReducer* previous_;
};

}  // namespace sgnn
