#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

// ---------------------------------------------------------------------------
// Binary elementwise operations with NumPy-style broadcasting.
// ---------------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }

// ---------------------------------------------------------------------------
// Scalar & unary elementwise operations.
// ---------------------------------------------------------------------------

Tensor neg(const Tensor& x);
Tensor scale(const Tensor& x, real factor);
Tensor add_scalar(const Tensor& x, real value);
/// x^p for scalar exponent p (x must be positive when p is non-integral).
Tensor pow_scalar(const Tensor& x, real exponent);
Tensor square(const Tensor& x);
Tensor sqrt_op(const Tensor& x);
Tensor exp_op(const Tensor& x);
Tensor log_op(const Tensor& x);
Tensor abs_op(const Tensor& x);
/// max(x, bound) elementwise; gradient is passed where x > bound.
Tensor clamp_min(const Tensor& x, real bound);

Tensor relu(const Tensor& x);
Tensor sigmoid(const Tensor& x);
Tensor tanh_op(const Tensor& x);
/// SiLU / swish: x * sigmoid(x) — the activation used by the EGNN layers.
Tensor silu(const Tensor& x);
/// Numerically-clamped softplus: log(1 + exp(x)).
Tensor softplus(const Tensor& x);

inline Tensor operator-(const Tensor& x) { return neg(x); }
inline Tensor operator*(const Tensor& x, real s) { return scale(x, s); }
inline Tensor operator*(real s, const Tensor& x) { return scale(x, s); }
inline Tensor operator+(const Tensor& x, real s) { return add_scalar(x, s); }
inline Tensor operator+(real s, const Tensor& x) { return add_scalar(x, s); }
inline Tensor operator-(const Tensor& x, real s) { return add_scalar(x, -s); }

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// (m, k) x (k, n) -> (m, n) dense matrix product.
Tensor matmul(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose(const Tensor& x);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all elements -> scalar.
Tensor sum(const Tensor& x);
/// Sum along one axis.
Tensor sum(const Tensor& x, std::size_t axis, bool keepdim);
/// Mean of all elements -> scalar.
Tensor mean(const Tensor& x);
/// Mean along one axis.
Tensor mean(const Tensor& x, std::size_t axis, bool keepdim);

// ---------------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------------

/// Same data, new shape (element counts must match).
Tensor reshape(const Tensor& x, const Shape& shape);
/// Concatenation along `axis`; all inputs must agree on the other axes.
Tensor concat(const std::vector<Tensor>& parts, std::size_t axis);
/// Contiguous sub-range along `axis`: elements [start, start + length).
Tensor narrow(const Tensor& x, std::size_t axis, std::int64_t start,
              std::int64_t length);

// ---------------------------------------------------------------------------
// Indexed operations — the message-passing primitives. Indices are plain
// host arrays (graph connectivity is static data, never differentiated).
// ---------------------------------------------------------------------------

/// Gathers rows of a 2-D tensor: out[i, :] = x[index[i], :].
Tensor index_select_rows(const Tensor& x, const std::vector<std::int64_t>& index);

/// Segment-sum of rows: out[index[i], :] += src[i, :], with `num_rows` output
/// rows. This is the aggregation step of message passing and the pooling
/// step of the graph-level readout.
Tensor scatter_add_rows(const Tensor& src, const std::vector<std::int64_t>& index,
                        std::int64_t num_rows);

// ---------------------------------------------------------------------------
// Composite helpers.
// ---------------------------------------------------------------------------

/// Row-wise L2 norm squared of a 2-D tensor -> (rows, 1).
Tensor row_norm_squared(const Tensor& x);

/// Mean squared error between prediction and target (target is constant).
Tensor mse_loss(const Tensor& prediction, const Tensor& target);

}  // namespace sgnn
