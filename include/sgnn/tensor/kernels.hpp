#pragma once

// sgnn::kernels — runtime-dispatched CPU kernel backends for the tensor ops.
//
// The op layer (src/tensor/ops_*.cpp) owns shapes, autograd, KernelScope
// accounting and thread-pool sharding; the inner loops live here behind a
// table of function pointers so the same op code runs against either
//
//   * the scalar reference backend (portable, always available), or
//   * the SIMD backend (AVX2+FMA on x86-64, NEON on AArch64), selected at
//     runtime from CPUID with an `SGNN_BACKEND=scalar|simd` env override.
//
// Every kernel comes in a float64 and a float32-compute flavour. Storage is
// always `real` (double); the fp32 flavour rounds operands through float and
// is enabled process-wide with `SGNN_COMPUTE_DTYPE=float32` (master weights,
// optimizer state and gradient accumulation stay fp64 — see docs/kernels.md
// for the exact rounding semantics and cross-backend tolerances).
//
// Determinism contract: within one backend, every kernel is bit-identical
// across thread counts (band decomposition is done by the caller with the
// deterministic parallel_for chunking, and each band accumulates in a fixed
// order). Across backends, matmul / matmul_at_b / elementwise / axis-sums
// are bit-identical by construction (the SIMD code performs the same
// per-element operations, with separate mul+add instead of FMA); only the
// dot-product kernels (matmul_a_bt, full sum) change reduction order and
// carry a documented tolerance.

#include <cstdint>

namespace sgnn {
// Storage scalar, re-declared here (identically to tensor.hpp) so the SIMD
// backend TU — compiled with stricter ISA flags — never includes the
// inline-heavy tensor headers and can't leak AVX2 code into shared inline
// functions through the static archive.
using real = double;
}  // namespace sgnn

namespace sgnn::kernels {

enum class Backend { kScalar = 0, kSimd = 1 };
enum class ComputeDtype { kFloat64 = 0, kFloat32 = 1 };

/// Elementwise binary kernels (same-shape and scalar-broadcast fast paths).
enum class BinaryOp { kAdd, kSub, kMul, kDiv };

/// Elementwise unary kernels. `c` is the op parameter where one exists
/// (kScale: factor, kAddScalar: addend, kPow: exponent, kClampMin: bound).
enum class UnaryOp {
  kNeg,
  kScale,
  kAddScalar,
  kPow,
  kSquare,
  kSqrt,
  kExp,
  kLog,
  kAbs,
  kClampMin,
  kRelu,
  kSigmoid,
  kTanh,
  kSilu,
  kSoftplus,
};

/// One backend's kernel entry points. Band kernels take element pointers to
/// whole operands plus a [row_begin, row_end) band so the caller can shard
/// with parallel_for while the table owns the inner loops. Elementwise
/// kernels take pre-offset pointers and a count. The `_f32` flavours of the
/// elementwise/reduction kernels read and write `real` storage but round
/// every operand through float; the `_f32` matmul bands run on float scratch
/// buffers prepared by the drivers below.
struct KernelTable {
  // C(m,n) = A(m,k) @ B(k,n), rows [row_begin, row_end) of C.
  void (*matmul_rows_f64)(const real* a, const real* b, real* c,
                          std::int64_t k, std::int64_t n,
                          std::int64_t row_begin, std::int64_t row_end);
  void (*matmul_rows_f32)(const float* a, const float* b, float* c,
                          std::int64_t k, std::int64_t n,
                          std::int64_t row_begin, std::int64_t row_end);
  // C(k,n) = Aᵀ @ B with A given as (m,k), B as (m,n); band is rows of C.
  void (*matmul_at_b_band_f64)(const real* a, const real* b, real* c,
                               std::int64_t m, std::int64_t k, std::int64_t n,
                               std::int64_t row_begin, std::int64_t row_end);
  void (*matmul_at_b_band_f32)(const float* a, const float* b, float* c,
                               std::int64_t m, std::int64_t k, std::int64_t n,
                               std::int64_t row_begin, std::int64_t row_end);
  // C(m,k) = A(m,n) @ Bᵀ with B given as (k,n); band is rows of C.
  void (*matmul_a_bt_rows_f64)(const real* a, const real* b, real* c,
                               std::int64_t n, std::int64_t k,
                               std::int64_t row_begin, std::int64_t row_end);
  void (*matmul_a_bt_rows_f32)(const float* a, const float* b, float* c,
                               std::int64_t n, std::int64_t k,
                               std::int64_t row_begin, std::int64_t row_end);

  void (*binary_f64)(BinaryOp op, const real* a, const real* b, real* out,
                     std::int64_t n);
  void (*binary_f32)(BinaryOp op, const real* a, const real* b, real* out,
                     std::int64_t n);
  void (*binary_scalar_l_f64)(BinaryOp op, real a, const real* b, real* out,
                              std::int64_t n);
  void (*binary_scalar_l_f32)(BinaryOp op, real a, const real* b, real* out,
                              std::int64_t n);
  void (*binary_scalar_r_f64)(BinaryOp op, const real* a, real b, real* out,
                              std::int64_t n);
  void (*binary_scalar_r_f32)(BinaryOp op, const real* a, real b, real* out,
                              std::int64_t n);
  // ga[i] = d(out)/da * g[i], gb[i] = d(out)/db * g[i] (same-shape inputs).
  void (*binary_bwd_f64)(BinaryOp op, const real* a, const real* b,
                         const real* g, real* ga, real* gb, std::int64_t n);
  void (*binary_bwd_f32)(BinaryOp op, const real* a, const real* b,
                         const real* g, real* ga, real* gb, std::int64_t n);

  void (*unary_f64)(UnaryOp op, const real* x, real* out, real c,
                    std::int64_t n);
  void (*unary_f32)(UnaryOp op, const real* x, real* out, real c,
                    std::int64_t n);
  void (*unary_bwd_f64)(UnaryOp op, const real* x, const real* g, real* gx,
                        real c, std::int64_t n);
  void (*unary_bwd_f32)(UnaryOp op, const real* x, const real* g, real* gx,
                        real c, std::int64_t n);

  // Chunk sum with a fp64 accumulator (fp32 flavour rounds each input).
  double (*sum_chunk_f64)(const real* x, std::int64_t n);
  double (*sum_chunk_f32)(const real* x, std::int64_t n);
  // dst[i] += src[i]; the ordered inner step of axis reductions.
  void (*accumulate_f64)(const real* src, real* dst, std::int64_t n);
  void (*accumulate_f32)(const real* src, real* dst, std::int64_t n);
};

/// The scalar reference table (always available).
const KernelTable& scalar_table();

/// The vectorized table. On targets compiled without AVX2/NEON support its
/// entries alias the scalar reference implementations.
const KernelTable& simd_table();

/// True when the SIMD table is actually vectorized AND the running CPU
/// supports the required ISA extensions (AVX2+FMA on x86-64).
bool simd_available();

/// The backend in effect for the next kernel launch: a ScopedBackend
/// override if active, else the process-wide selection (SGNN_BACKEND env
/// override, else SIMD when simd_available()). Resolved lazily once per
/// process; an unknown SGNN_BACKEND value throws, and SGNN_BACKEND=simd on
/// hardware without SIMD support logs a warning and falls back to scalar.
Backend active_backend();

/// The compute dtype in effect: a ScopedComputeDtype override if active,
/// else SGNN_COMPUTE_DTYPE (float32|float64, default float64). Unknown
/// values throw.
ComputeDtype active_compute_dtype();

const KernelTable& active_table();

const char* backend_name(Backend backend);
const char* dtype_name(ComputeDtype dtype);

/// Element width (bytes) of the active compute dtype, for KernelScope byte
/// accounting: 8 under fp64, 4 under fp32 compute.
std::int64_t compute_element_size();

/// Test/bench hook forcing the backend process-wide for the current scope.
/// Not thread-safe against concurrently launching kernels from other
/// threads; intended for single-threaded test setup.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  int previous_;
};

/// Test/bench hook forcing the compute dtype, same caveats as ScopedBackend.
class ScopedComputeDtype {
 public:
  explicit ScopedComputeDtype(ComputeDtype dtype);
  ~ScopedComputeDtype();
  ScopedComputeDtype(const ScopedComputeDtype&) = delete;
  ScopedComputeDtype& operator=(const ScopedComputeDtype&) = delete;

 private:
  int previous_;
};

// ---------------------------------------------------------------------------
// Threaded drivers. These resolve the active table/dtype, shard the work
// across the process thread pool with the deterministic chunking, and (for
// fp32 matmul) manage the float scratch buffers. The op layer calls these
// inside its KernelScope.

/// c(m,n) = a(m,k) @ b(k,n).
void matmul(const real* a, const real* b, real* c, std::int64_t m,
            std::int64_t k, std::int64_t n);

/// c(k,n) = aᵀ @ b with a given as (m,k), b as (m,n).
void matmul_at_b(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t k, std::int64_t n);

/// c(m,k) = a(m,n) @ bᵀ with b given as (k,n).
void matmul_a_bt(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t n, std::int64_t k);

void binary(BinaryOp op, const real* a, const real* b, real* out,
            std::int64_t n);
void binary_scalar_l(BinaryOp op, real a, const real* b, real* out,
                     std::int64_t n);
void binary_scalar_r(BinaryOp op, const real* a, real b, real* out,
                     std::int64_t n);
void binary_backward(BinaryOp op, const real* a, const real* b, const real* g,
                     real* ga, real* gb, std::int64_t n);

void unary(UnaryOp op, const real* x, real* out, real c, std::int64_t n);
void unary_backward(UnaryOp op, const real* x, const real* g, real* gx,
                    real c, std::int64_t n);

/// Chunk-ordered full sum (deterministic across pool sizes).
double reduce_sum(const real* x, std::int64_t n);

/// dst[i] += src[i] over a caller-owned band (axis-reduction inner step).
void accumulate(const real* src, real* dst, std::int64_t n);

}  // namespace sgnn::kernels
