#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "sgnn/util/error.hpp"

namespace sgnn {

/// Dense row-major tensor shape. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t axis) const {
    SGNN_CHECK(axis < dims_.size(), "axis " << axis << " out of range for rank "
                                            << dims_.size());
    return dims_[axis];
  }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Total number of elements (1 for scalars).
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (const auto d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides in elements.
  std::vector<std::int64_t> strides() const {
    std::vector<std::int64_t> s(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;) {
      s[i - 1] = s[i] * dims_[i];
    }
    return s;
  }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

  /// NumPy-style broadcast of two shapes; throws if incompatible.
  static Shape broadcast(const Shape& a, const Shape& b);

  /// True if `from` can broadcast to `to`.
  static bool broadcastable_to(const Shape& from, const Shape& to);

 private:
  void validate() const {
    for (const auto d : dims_) {
      SGNN_CHECK(d >= 0, "negative dimension in shape " << to_string());
    }
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace sgnn
