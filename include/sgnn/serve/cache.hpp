#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sgnn/graph/structure.hpp"

namespace sgnn::serve {

/// Canonical form of an AtomicStructure for cache keying. Two structures
/// that differ only by a rigid translation (open systems) or by atom order
/// produce identical `bytes` (and therefore identical `hash`); any change
/// to species, geometry beyond the quantization step, cell, or periodicity
/// produces a different key.
///
/// `perm` maps request atom order to canonical atom order: request atom i
/// sits at canonical slot perm[i]. Per-atom results (forces) are stored in
/// canonical order so a permuted duplicate of a cached structure can have
/// its forces mapped back into its own atom order on a hit.
struct CanonicalKey {
  std::uint64_t hash = 0;
  std::string bytes;                ///< collision-checked identity
  std::vector<std::int64_t> perm;   ///< request index -> canonical index
};

/// Coordinate quantization step (Angstrom) used by canonicalize(). Two
/// structures whose centered coordinates round to the same 1e-6 A grid are
/// treated as the same request; a perturbation above the step is a miss.
inline constexpr double kCanonicalQuantum = 1e-6;

/// Builds the canonical key: centers positions on the centroid (exact
/// translation invariance for open systems), quantizes coordinates to
/// kCanonicalQuantum, and sorts atoms by (species, qx, qy, qz). Periodic
/// structures keep their raw coordinates (a translated periodic replica may
/// wrap differently, so only byte-identical periodic inputs are deduped);
/// the cell and periodic flag are part of the key either way.
CanonicalKey canonicalize(const AtomicStructure& structure);

/// Cached model output for one canonical structure. Forces are stored in
/// canonical atom order (see CanonicalKey::perm).
struct CachedResult {
  double energy = 0.0;
  bool has_forces = false;
  std::vector<Vec3> forces;  ///< canonical order; empty when !has_forces
};

/// Thread-safe LRU cache from canonical structure to model output.
///
/// Lookup is by 64-bit hash with a collision check on the canonical bytes:
/// a request whose hash matches a resident entry but whose bytes differ is
/// reported as a miss (and counted), so a hash collision can only cost a
/// recompute, never serve wrong numbers. Each hash slot holds one entry;
/// insert replaces the slot (newest wins).
class StructureCache {
 public:
  /// `capacity` bounds resident entries; 0 disables caching entirely.
  explicit StructureCache(std::size_t capacity);

  /// Returns true and fills `out` on a hit. A hit requires equal canonical
  /// bytes AND, when `need_forces`, a resident entry that has forces —
  /// an energy-only entry cannot satisfy a force request.
  bool lookup(const CanonicalKey& key, bool need_forces, CachedResult& out);

  /// Inserts (or replaces) the entry for `key`, evicting the least
  /// recently used entry when over capacity.
  void insert(const CanonicalKey& key, CachedResult result);

  std::size_t size() const;

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t collisions = 0;  ///< subset of misses: hash matched, bytes differed
    std::int64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string bytes;
    CachedResult result;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace sgnn::serve
