#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sgnn/graph/structure.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/serve/cache.hpp"
#include "sgnn/util/error.hpp"

// Batched inference serving on the forward-only path (the ROADMAP's
// production target). One Server owns:
//   - a bounded request queue with admission control (shed-on-full),
//   - worker threads that drain it with dynamic batching: variable-size
//     atomic graphs are packed into one disjoint-union GraphBatch up to a
//     graph-count and atom-count budget per batch,
//   - a replica pool: each worker holds its own immutable EGNNModel copy
//     (parameters frozen), refreshed from a versioned payload at batch
//     boundaries, so swap_weights() is zero-downtime and no request ever
//     observes a half-written model,
//   - a translation/permutation-invariant LRU result cache (cache.hpp).
// Energy-only requests run under autograd::NoGradGuard (no tape is
// allocated); force requests differentiate the energy w.r.t. positions with
// parameter gradients disabled and return F = -dE/dx.

namespace sgnn::serve {

/// Why the server refused a request.
enum class RejectReason : int {
  kQueueFull = 0,     ///< admission control shed the request
  kShuttingDown = 1,  ///< stop() was called (or the server is destructing)
};

/// Typed rejection thrown by Server::submit so callers can tell overload
/// (retry later, back off) from shutdown (give up) without string matching.
class RejectedError : public Error {
 public:
  RejectedError(RejectReason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

struct InferenceRequest {
  AtomicStructure structure;
  /// When false only the energy is computed (cheaper: no backward pass).
  bool compute_forces = false;
};

struct InferenceResult {
  double energy = 0.0;              ///< model energy, eV
  std::vector<Vec3> forces;         ///< -dE/dx per atom; empty unless requested
  bool cache_hit = false;
  std::uint64_t weights_version = 0;  ///< version that produced this result
};

struct ServerOptions {
  int num_workers = 2;                  ///< replica count (one model each)
  std::size_t max_queue = 1024;         ///< pending-request admission bound
  std::int64_t max_batch_graphs = 16;   ///< dynamic-batch graph budget
  std::int64_t max_batch_atoms = 4096;  ///< dynamic-batch atom budget
  std::size_t cache_capacity = 4096;    ///< LRU entries; 0 disables caching
};

/// Batched inference server over one model architecture. Construction
/// spawns the worker replicas from a serialized model payload
/// (model_payload_bytes); the destructor drains the queue and joins them.
///
/// Thread safety: submit / swap_weights / stop and the observers may be
/// called concurrently from any thread.
class Server {
 public:
  Server(const ModelConfig& config, std::string model_payload,
         const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request and returns the future result. Cache hits
  /// complete synchronously without touching the queue. Throws
  /// RejectedError when the queue is at max_queue (kQueueFull) or the
  /// server is stopping (kShuttingDown); throws Error on an invalid
  /// structure.
  std::future<InferenceResult> submit(InferenceRequest request);

  /// Publishes new weights (a model_payload_bytes payload for the same
  /// architecture). Validates the payload fully before publishing; in-
  /// flight batches complete on the weights they started with, subsequent
  /// batches use the new version. Throws Error on a mismatched or corrupt
  /// payload, leaving the served weights unchanged.
  void swap_weights(std::string model_payload);

  /// Stops accepting requests, drains the pending queue, joins workers.
  /// Every request admitted before stop() still completes. Idempotent.
  void stop();

  std::uint64_t weights_version() const {
    return version_.load(std::memory_order_acquire);
  }
  std::size_t queue_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }
  StructureCache::Stats cache_stats() const { return cache_.stats(); }
  const ServerOptions& options() const { return options_; }
  const ModelConfig& config() const { return config_; }

 private:
  /// One admitted, not-yet-answered request. The canonical key is computed
  /// at admission (it doubles as request validation) so workers can insert
  /// into the cache without re-canonicalizing.
  struct Pending {
    InferenceRequest request;
    CanonicalKey key;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::int64_t trace_begin_us = 0;
  };

  void worker_loop(int worker_id);
  void process_batch(std::vector<Pending>& batch, EGNNModel& model,
                     std::uint64_t model_version);
  /// Runs one gradient-homogeneous sub-batch (all-energy or all-forces).
  void run_group(std::vector<Pending*>& group, EGNNModel& model,
                 std::uint64_t model_version, bool want_forces);
  /// Completes one request: promise, latency metric, per-request span.
  void finish(Pending& pending, InferenceResult result);

  ModelConfig config_;
  ServerOptions options_;
  StructureCache cache_;

  mutable std::mutex mutex_;            ///< guards queue_, payload_, stopping_
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::shared_ptr<const std::string> payload_;
  std::atomic<std::uint64_t> version_{1};
  bool stopping_ = false;

  // Long-lived worker replicas, one model copy each — a different shape of
  // concurrency than parallel_for's fork-join lanes, so serve is (with
  // comm) one of the two subsystems the thread lint admits.
  std::vector<std::thread> workers_;
};

}  // namespace sgnn::serve
