#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/graph/neighbor.hpp"
#include "sgnn/graph/structure.hpp"

namespace sgnn {

/// Energy/forces evaluated by a reference potential.
struct PotentialResult {
  double energy = 0.0;
  std::vector<Vec3> forces;
};

/// Deterministic classical potential used as the *teacher* labeling the
/// synthetic datasets (the substitution for the DFT/coupled-cluster labels
/// of ANI1x, QM7-X, OC20/22 and MPTrj — see DESIGN.md).
///
/// Three physically-motivated terms give the structure→energy map the
/// qualitative character that makes the paper's scaling questions
/// meaningful:
///   * a Morse-like pair term (short-range repulsion + bonding well),
///   * an EAM-like density-embedding term (non-additive many-body effects —
///     a single message-passing layer cannot represent it exactly),
///   * a three-body angular term (directional bonding; benefits deeper
///     models up to the over-smoothing limit).
/// All terms are smoothly switched off at the cutoff so forces are
/// continuous; analytic forces are verified against finite differences in
/// tests/potential_test.cpp.
///
/// Species dependence is procedural: per-element and per-pair coefficients
/// are derived from hashes of atomic numbers, so any composition gets
/// consistent, reproducible physics without tabulated data.
class ReferencePotential {
 public:
  struct Options {
    /// Angstrom; must match graph construction. 3.5 keeps the minimum-image
    /// convention valid for the smallest periodic cells the dataset
    /// generators emit (7.2 A boxes).
    double cutoff = 3.5;
    double pair_weight = 1.0;
    double embed_weight = 0.6;
    double angular_weight = 0.3;
    /// Seed for the procedural species coefficients.
    std::uint64_t seed = 0x5CA1AB1E;
  };

  ReferencePotential() : ReferencePotential(Options{}) {}
  explicit ReferencePotential(Options options);

  double cutoff() const { return options_.cutoff; }

  /// Evaluates energy and analytic forces. `edges` must be the directed
  /// radius graph of `structure` at this potential's cutoff.
  PotentialResult evaluate(const AtomicStructure& structure,
                           const EdgeList& edges) const;

  /// Convenience: builds the neighbor list internally.
  PotentialResult evaluate(const AtomicStructure& structure) const;

  /// Per-species isolated-atom reference energy (included in evaluate()).
  double atomic_reference_energy(int atomic_number) const;

  /// Procedural partial charge of a species (e-units, zero-sum is NOT
  /// enforced — the dipole uses the centroid as reference).
  double partial_charge(int atomic_number) const;

  /// Magnitude of the dipole moment |sum_i q_i (r_i - centroid)| — the
  /// third, graph-level prediction target used by the multi-task
  /// experiments (HydraGNN's multi-task heads predict several properties
  /// at once). Rotation/translation invariant.
  double dipole_magnitude(const AtomicStructure& structure) const;

 private:
  Options options_;
};

}  // namespace sgnn
