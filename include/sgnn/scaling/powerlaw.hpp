#pragma once

#include <vector>

namespace sgnn {

/// Saturating power law L(x) = a * x^(-alpha) + c — the functional form of
/// neural scaling laws (Kaplan et al.), with `c` the irreducible loss.
struct PowerLawFit {
  double a = 0;
  double alpha = 0;
  double c = 0;
  double r_squared = 0;  ///< of log(L - c) vs log(x)

  double evaluate(double x) const;
};

/// Fits the saturating power law by profiling the offset: for each candidate
/// c on a grid below min(y), the remaining (a, alpha) problem is linear in
/// log space; the c with the best log-space R^2 wins. Requires >= 3 points
/// and strictly positive x.
PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Straight log-log least squares (c forced to 0); the LLM-style "pure"
/// power law the paper contrasts GNN behaviour against.
PowerLawFit fit_pure_power_law(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Slopes d log(y) / d log(x) between consecutive points. Diminishing
/// returns (Fig. 3's message) shows up as slopes shrinking toward zero as
/// x grows; a pure power law keeps them constant.
std::vector<double> local_loglog_slopes(const std::vector<double>& x,
                                        const std::vector<double>& y);

}  // namespace sgnn
