#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/data/dataset.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/train/trainer.hpp"

namespace sgnn {

/// Unit conversion between this repo's scaled-down experiments and the
/// paper's axes. One "paper TB" of dataset corresponds to
/// `bytes_per_paper_tb` real bytes here, and one "paper parameter" to
/// `params_per_paper_param` real parameters; benches print both scales.
struct PaperScale {
  double bytes_per_paper_tb;
  double params_per_paper_param;
};

/// One measured point of a scaling sweep: the (model size, data size) ->
/// test-loss mapping that Figs. 3-5 are drawn from.
struct SweepPoint {
  std::int64_t parameters = 0;
  std::int64_t hidden_dim = 0;
  std::int64_t num_layers = 0;
  std::uint64_t dataset_bytes = 0;
  std::int64_t train_graphs = 0;
  double train_loss = 0;
  double test_loss = 0;
  double energy_mae_per_atom = 0;
  double force_mae = 0;
  double feature_spread = 0;  ///< over-smoothing metric (Fig. 5)
  double seconds = 0;
};

/// Shared protocol of the scaling experiments (Sec. IV): train a model of
/// the given config on the given training subset for a fixed number of
/// epochs, then evaluate on the FIXED held-out test set sampled from the
/// full aggregate.
struct SweepProtocol {
  TrainOptions train;
  std::int64_t eval_batch_size = 16;
};

SweepPoint run_scaling_point(const AggregatedDataset& dataset,
                             const std::vector<std::size_t>& train_indices,
                             const std::vector<std::size_t>& test_indices,
                             const ModelConfig& model_config,
                             const SweepProtocol& protocol);

}  // namespace sgnn
