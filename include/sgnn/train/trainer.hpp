#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sgnn/data/loader.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/train/baseline.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/train/optim.hpp"
#include "sgnn/train/schedule.hpp"

namespace sgnn {

namespace obs {
class TelemetrySink;
}  // namespace obs

/// Hyperparameters of one training run. Defaults follow the paper's setup
/// (Sec. III-B: hyperparameters from the HydraGNN-GFM study, 10 epochs).
struct TrainOptions {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 8;
  Adam::Options adam;
  LossWeights loss_weights;
  bool activation_checkpointing = false;
  /// Multiplicative learning-rate decay applied after every epoch
  /// (ignored when `schedule` is set).
  double lr_decay = 0.85;
  /// Step-based schedule overriding adam.learning_rate/lr_decay when set.
  std::optional<LrSchedule> schedule;
  /// Joint L2 gradient-norm clip; 0 disables clipping.
  double max_grad_norm = 0.0;
};

/// Single-process trainer: the building block the scaling sweeps call, and
/// the reference the distributed trainers are tested against.
class Trainer {
 public:
  Trainer(EGNNModel& model, const TrainOptions& options);

  struct EpochResult {
    double mean_train_loss = 0;
    double seconds = 0;
  };

  /// One pass over the loader; updates after every batch. Tags the phases
  /// (forward/backward/optimizer) for the memory profiler.
  EpochResult train_epoch(DataLoader& loader);

  /// Full run: `epochs` passes with LR decay.
  std::vector<EpochResult> fit(DataLoader& loader);

  /// Test-set metrics at the current parameters.
  EvalMetrics evaluate(const std::vector<const MolecularGraph*>& graphs,
                       std::int64_t batch_size) const;

  /// Trains and evaluates on energies with this per-species composition
  /// baseline subtracted (see EnergyBaseline). Applied consistently to
  /// train and test targets, so losses across runs remain comparable.
  void set_energy_baseline(EnergyBaseline baseline) {
    baseline_ = baseline;
    use_baseline_ = true;
  }

  EGNNModel& model() { return model_; }

  /// Attaches a per-step telemetry receiver (not owned; nullptr detaches).
  /// Every step also feeds the global obs::MetricsRegistry regardless.
  void set_telemetry(obs::TelemetrySink* sink) { telemetry_ = sink; }

 private:
  EGNNModel& model_;
  TrainOptions options_;
  Adam optimizer_;
  EnergyBaseline baseline_;
  bool use_baseline_ = false;
  std::int64_t global_step_ = 0;
  std::int64_t epoch_index_ = 0;
  obs::TelemetrySink* telemetry_ = nullptr;
};

}  // namespace sgnn
