#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sgnn/ckpt/checkpoint.hpp"
#include "sgnn/data/loader.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/train/baseline.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/train/loss_scaler.hpp"
#include "sgnn/train/optim.hpp"
#include "sgnn/train/schedule.hpp"

namespace sgnn {

namespace obs {
class TelemetrySink;
}  // namespace obs

/// Hyperparameters of one training run. Defaults follow the paper's setup
/// (Sec. III-B: hyperparameters from the HydraGNN-GFM study, 10 epochs).
struct TrainOptions {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 8;
  Adam::Options adam;
  LossWeights loss_weights;
  bool activation_checkpointing = false;
  /// Multiplicative learning-rate decay applied after every epoch
  /// (ignored when `schedule` is set).
  double lr_decay = 0.85;
  /// Step-based schedule overriding adam.learning_rate/lr_decay when set.
  std::optional<LrSchedule> schedule;
  /// Joint L2 gradient-norm clip; 0 disables clipping.
  double max_grad_norm = 0.0;
  /// Dynamic loss scaling for reduced-precision runs (single-process
  /// Trainer only; the distributed trainers ignore it). Enable together
  /// with SGNN_COMPUTE_DTYPE=float32 — harmless but pointless under fp64.
  LossScaler::Options loss_scaling;
  /// Crash-safe training-state snapshots (see docs/fault-tolerance.md).
  ckpt::CheckpointOptions checkpoint;
};

/// Single-process trainer: the building block the scaling sweeps call, and
/// the reference the distributed trainers are tested against.
class Trainer {
 public:
  Trainer(EGNNModel& model, const TrainOptions& options);

  struct EpochResult {
    double mean_train_loss = 0;
    double seconds = 0;
  };

  /// One pass over the loader; updates after every batch. Tags the phases
  /// (forward/backward/optimizer) for the memory profiler.
  EpochResult train_epoch(DataLoader& loader);

  /// Full run: `epochs` passes with LR decay. When
  /// options.checkpoint.resume_from names a readable snapshot, training
  /// resumes from it BIT-IDENTICALLY: the parameters after `fit` are
  /// byte-for-byte equal to an uninterrupted run of the same options.
  std::vector<EpochResult> fit(DataLoader& loader);

  /// Test-set metrics at the current parameters.
  EvalMetrics evaluate(const std::vector<const MolecularGraph*>& graphs,
                       std::int64_t batch_size) const;

  /// Trains and evaluates on energies with this per-species composition
  /// baseline subtracted (see EnergyBaseline). Applied consistently to
  /// train and test targets, so losses across runs remain comparable.
  void set_energy_baseline(EnergyBaseline baseline) {
    baseline_ = baseline;
    use_baseline_ = true;
  }

  EGNNModel& model() { return model_; }

  /// Attaches a per-step telemetry receiver (not owned; nullptr detaches).
  /// Every step also feeds the global obs::MetricsRegistry regardless.
  void set_telemetry(obs::TelemetrySink* sink) { telemetry_ = sink; }

 private:
  /// Assembles the full training-state snapshot payload (model, Adam
  /// moments + timestep + LR, loader position, step/epoch counters).
  std::string build_snapshot(const DataLoader& loader);
  /// Writes a snapshot when the every_steps cadence is due.
  void maybe_checkpoint(const DataLoader& loader);
  /// Restores from options.checkpoint.resume_from when set; returns true
  /// when a snapshot was applied (the mid-epoch loader state included).
  bool try_resume(DataLoader& loader);

  EGNNModel& model_;
  TrainOptions options_;
  Adam optimizer_;
  LossScaler loss_scaler_;
  EnergyBaseline baseline_;
  bool use_baseline_ = false;
  std::int64_t global_step_ = 0;
  std::int64_t epoch_index_ = 0;
  obs::TelemetrySink* telemetry_ = nullptr;
  std::optional<ckpt::CheckpointManager> ckpt_manager_;
  /// Set by try_resume: the first train_epoch continues the restored
  /// mid-epoch loader state instead of reshuffling.
  bool skip_begin_epoch_ = false;
};

}  // namespace sgnn
