#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sgnn/comm/communicator.hpp"
#include "sgnn/tensor/memory_tracker.hpp"
#include "sgnn/tensor/tensor.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

/// Packs a parameter list's flattened gradient into size-capped buckets and
/// posts each bucket's collective the moment its last gradient is produced
/// during backward, so communication overlaps the rest of the backward
/// pass (the enabler behind DDP's and ZeRO's scaling curves).
///
/// Layout: walking parameters in REVERSE registration order — the order
/// autograd finishes their gradients, since later layers backpropagate
/// first — and filling each bucket to exactly `bucket_bytes` (splitting
/// mid-tensor when the cap does not align) makes every bucket a CONTIGUOUS
/// range of the flat gradient vector, descending from the top. Contiguity
/// is what lets a bucket reduce-scatter along the GLOBAL ZeRO shard
/// boundaries (explicit counts = |shard_r ∩ bucket|), so shard ownership —
/// and therefore checkpoint layout — is independent of the bucket size.
///
/// Bit-identity: every collective sums elements in fixed rank order exactly
/// like the blocking single-call path, and buckets are drained into the
/// same flat vectors the sequential optimizers build, so bucketed training
/// is byte-identical to sequential training for ANY bucket_bytes (pinned
/// by tests/overlap_test.cpp).
///
/// Step protocol (all methods are called from the owning rank's thread):
///   begin_step(rank)                   — before backward
///   on_leaf_grad(key)                  — from the autograd leaf-grad hook
///   post_remaining()                   — after backward (sweeps up leaves
///                                        the hook never saw: params used
///                                        only inside checkpointed
///                                        segments, or with no grad)
///   drain_all_reduce / drain_reduce_scatter — before the optimizer update
///   all_gather_params                  — ZeRO only, after the update
/// Every rank must run the identical protocol (same buckets, same order):
/// posts are matched across ranks by FIFO position.
class GradBucketer {
 public:
  /// PyTorch DDP's default bucket cap.
  static constexpr std::size_t kDefaultBucketBytes = 25 * 1024 * 1024;

  /// One bucket: the flat-gradient element range [begin, end).
  struct Bucket {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Pure layout function (exposed for the fuzz tests): chops [0, n) into
  /// cap-sized contiguous chunks from the TOP down, returned in post order
  /// (descending ranges). Every element of [0, n) lands in exactly one
  /// bucket; n == 0 yields no buckets; a cap below one element is clamped
  /// to one element.
  static std::vector<Bucket> plan(std::size_t total_elements,
                                  std::size_t bucket_bytes);

  /// `kind` selects the gradient collective: kAllReduce for DDP,
  /// kReduceScatter for ZeRO. Parameter tensors are aliased, not copied.
  GradBucketer(Communicator& comm, std::vector<Tensor> parameters,
               CollectiveKind kind, std::size_t bucket_bytes);
  ~GradBucketer();
  GradBucketer(const GradBucketer&) = delete;
  GradBucketer& operator=(const GradBucketer&) = delete;

  std::size_t num_buckets() const { return buckets_.size(); }
  std::size_t total_elements() const { return total_elements_; }
  bool active() const { return active_; }

  /// Arms the bucketer for one training step of `rank`: resets readiness,
  /// restarts the step clock, clears last step's events. Must not be called
  /// while a step is already active (un-drained posts would be orphaned).
  void begin_step(int rank);

  /// Leaf-grad hook body: install
  ///   autograd::ScopedLeafGradHook hook(
  ///       [&](const void* leaf) { bucketer.on_leaf_grad(leaf); });
  /// around backward(). Unknown keys are ignored (checkpoint recompute
  /// introduces fresh leaves). When a parameter's gradient completes, every
  /// bucket whose overlapping parameters are all complete is posted — in
  /// bucket order, holding back out-of-order completions so the post FIFO
  /// is identical on every rank.
  void on_leaf_grad(const void* leaf);

  /// Posts every bucket not yet posted (parameters that never produced a
  /// gradient contribute zeros, matching flatten_gradients). Idempotent.
  void post_remaining();

  /// DDP drain: waits buckets in post order and assembles the full flat
  /// gradient SUM (not yet averaged) into `flat_grad` — byte-identical to
  /// what blocking all_reduce_sum(flatten_gradients(...)) produces.
  void drain_all_reduce(std::vector<real>& flat_grad);

  /// ZeRO drain: waits buckets in post order and assembles THIS rank's
  /// global gradient shard (summed, not averaged) into `grad_shard` —
  /// byte-identical to blocking reduce_scatter_sum on the full vector.
  void drain_reduce_scatter(std::vector<real>& grad_shard);

  /// ZeRO parameter path: posts one non-blocking all-gather per bucket of
  /// the UPDATED parameter shard (`param_shard` = this rank's global shard
  /// slice), then scatters each bucket into the parameter tensors as it
  /// lands — the write-back of bucket k overlaps the gather of k+1. Ends
  /// the step.
  void all_gather_params(const std::vector<real>& param_shard);

  /// Ends a DDP step (ZeRO steps end inside all_gather_params).
  void end_step();

  /// Post/wait timestamps of the last step's collectives, in FIFO order and
  /// seconds since begin_step — the input InterconnectModel::overlap_cost
  /// prices. Clears the recorded events.
  std::vector<InterconnectModel::OverlapEvent> take_events();

 private:
  struct BucketState;

  void post_bucket(std::size_t b);
  void post_ready();
  /// Waits bucket b's handle, stamping the wait on its event.
  void wait_bucket(std::size_t b);

  Communicator& comm_;
  std::vector<Tensor> parameters_;
  CollectiveKind kind_;
  std::size_t total_elements_ = 0;
  std::vector<std::size_t> param_offsets_;  ///< flat offset of each param
  std::unordered_map<const void*, std::size_t> leaf_to_param_;
  std::vector<Bucket> buckets_;
  /// Buckets overlapping each param: [first, last] (contiguous by
  /// construction — param ranges and buckets are both contiguous).
  std::vector<std::pair<std::size_t, std::size_t>> param_buckets_;
  /// Params overlapping each bucket: [first, last].
  std::vector<std::pair<std::size_t, std::size_t>> bucket_params_;
  /// ZeRO: per-bucket |shard_r ∩ bucket| for every rank r.
  std::vector<std::vector<std::size_t>> counts_;

  /// Per-step state.
  int rank_ = 0;
  bool active_ = false;
  std::vector<bool> param_done_;
  std::vector<std::size_t> bucket_pending_;  ///< incomplete params per bucket
  std::size_t next_post_ = 0;                ///< next bucket to post
  std::vector<CollectiveHandle> handles_;
  std::vector<std::vector<real>> staging_;  ///< per-bucket payload buffers
  std::vector<std::vector<real>> pieces_;   ///< ZeRO per-bucket shard pieces
  std::vector<std::size_t> event_index_;    ///< bucket -> its events_ slot
  std::vector<InterconnectModel::OverlapEvent> events_;
  WallTimer step_timer_;
  /// Staging is real allocated workspace; account it like the sequential
  /// optimizers' flat buffers do.
  std::optional<ScopedBytes> staging_bytes_;
};

}  // namespace sgnn
