#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sgnn/comm/communicator.hpp"
#include "sgnn/train/bucketer.hpp"
#include "sgnn/train/optim.hpp"

namespace sgnn {

/// Flattening helpers shared by the distributed optimizers.
std::vector<real> flatten_parameters(const std::vector<Tensor>& parameters);
/// Undefined gradients flatten to zeros (a parameter a branch never touched).
std::vector<real> flatten_gradients(const std::vector<Tensor>& parameters);
void unflatten_into_parameters(const std::vector<real>& flat,
                               std::vector<Tensor>& parameters);

/// Data-parallel Adam, one instance per rank. Gradients are all-reduced
/// (averaged) so every replica applies the identical update; each rank
/// keeps a FULL copy of both Adam moments — the baseline whose optimizer-
/// state redundancy ZeRO removes.
class DDPAdam {
 public:
  /// `bucket_bytes` caps the gradient buckets the overlapped all-reduce
  /// path posts during backward (default: DDP's 25 MB); 0 falls back to
  /// the sequential single-call path. Both paths are byte-identical.
  DDPAdam(Communicator& comm, std::vector<Tensor> parameters,
          const Adam::Options& options,
          std::size_t bucket_bytes = GradBucketer::kDefaultBucketBytes);

  /// Collective: every rank must call once per step. When bucketing is on
  /// and the trainer armed the bucketer before backward (begin_step + the
  /// leaf-grad hook), gradients already in flight are drained here; called
  /// without arming, it posts and drains everything itself (bucketed but
  /// unoverlapped — still bit-identical).
  void step(int rank);
  void zero_grad();
  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }

  /// Joint L2 clip applied to the rank-AVERAGED gradient (0 disables).
  /// Clipping after averaging keeps every replica's update bit-identical —
  /// the invariant per-replica clipping would break.
  void set_max_grad_norm(double max_norm) { max_grad_norm_ = max_norm; }

  /// Optimizer-state access for training checkpoints (sgnn::ckpt).
  std::int64_t timestep() const { return timestep_; }
  void set_timestep(std::int64_t timestep) { timestep_ = timestep; }
  Tensor& moment1() { return m_; }
  Tensor& moment2() { return v_; }

  /// The gradient bucketer behind the overlapped path; null when
  /// bucket_bytes was 0. The trainer arms it (begin_step + leaf-grad hook)
  /// around backward and reads its overlap events for telemetry.
  GradBucketer* bucketer() { return bucketer_.get(); }

  /// Test hook, invoked inside step() after every bucket is posted and
  /// before the drain — the window the crash-during-overlap checkpoint
  /// test injects a SimulatedCrash into.
  void set_pre_drain_hook(std::function<void()> hook) {
    pre_drain_hook_ = std::move(hook);
  }

 private:
  Communicator& comm_;
  std::vector<Tensor> parameters_;
  Adam::Options options_;
  double max_grad_norm_ = 0.0;
  std::int64_t timestep_ = 0;
  Tensor m_;  ///< (N) full first moment, kOptimizerState
  Tensor v_;  ///< (N) full second moment, kOptimizerState
  std::unique_ptr<GradBucketer> bucketer_;
  std::function<void()> pre_drain_hook_;
};

/// ZeRO Adam (Rajbhandari et al., SC'20), one instance per rank: optimizer
/// states are PARTITIONED — each rank stores moments only for its 1/R
/// shard, updates that shard after a reduce-scatter of gradients, and the
/// refreshed parameters are re-assembled with an all-gather. Optimizer-
/// state memory per rank drops by ~R at the price of extra collectives,
/// reproducing the Tab. II trade-off (27% peak memory, 133% step time).
///
/// Stage 2 additionally RELEASES the full per-parameter gradient buffers
/// the moment the owned shard has been extracted (gradient partitioning):
/// numerically identical updates, lower gradient residency during the
/// weight-update phase.
class ZeroAdam {
 public:
  /// ZeRO stage: 1 = optimizer-state partitioning (the paper's setting),
  /// 2 = + gradient partitioning. `bucket_bytes` as in DDPAdam: bucketed
  /// reduce-scatter posted during backward plus an overlapped all-gather
  /// of the updated shard; 0 restores the sequential single-call path.
  /// Buckets scatter along the GLOBAL shard boundaries (explicit counts),
  /// so shard ownership — and checkpoint layout — never depends on the
  /// bucket size.
  ZeroAdam(Communicator& comm, std::vector<Tensor> parameters,
           const Adam::Options& options, int stage = 1,
           std::size_t bucket_bytes = GradBucketer::kDefaultBucketBytes);

  /// Collective: every rank must call once per step (see DDPAdam::step for
  /// the armed vs unarmed bucketing behavior).
  void step(int rank);
  void zero_grad();
  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }

  /// Joint L2 clip applied to the rank-AVERAGED gradient (0 disables).
  /// The global norm is assembled from per-shard partial sums via a scalar
  /// all-reduce, so every rank scales by the identical factor and replicas
  /// stay bit-identical. Costs one extra (tiny) collective per step.
  void set_max_grad_norm(double max_norm) { max_grad_norm_ = max_norm; }

  std::size_t shard_elements() const {
    return static_cast<std::size_t>(m_.numel());
  }
  int stage() const { return stage_; }

  /// Optimizer-state access for training checkpoints (sgnn::ckpt); each
  /// rank saves/restores only its own moment shard.
  std::int64_t timestep() const { return timestep_; }
  void set_timestep(std::int64_t timestep) { timestep_ = timestep; }
  Tensor& moment1() { return m_; }
  Tensor& moment2() { return v_; }

  /// See DDPAdam::bucketer / set_pre_drain_hook.
  GradBucketer* bucketer() { return bucketer_.get(); }
  void set_pre_drain_hook(std::function<void()> hook) {
    pre_drain_hook_ = std::move(hook);
  }

 private:
  Communicator& comm_;
  std::vector<Tensor> parameters_;
  Adam::Options options_;
  double max_grad_norm_ = 0.0;
  int stage_ = 1;
  std::int64_t timestep_ = 0;
  std::size_t total_elements_ = 0;
  Tensor m_;  ///< (N/R) sharded first moment
  Tensor v_;  ///< (N/R) sharded second moment
  std::unique_ptr<GradBucketer> bucketer_;
  std::function<void()> pre_drain_hook_;
};

}  // namespace sgnn
