#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// Dynamic loss scaling for reduced-precision training (the classic AMP
/// recipe). The loss is multiplied by a scale before backward so small
/// gradients survive float32 rounding; gradients are divided by the same
/// scale before the optimizer step. A step whose gradients contain Inf/NaN
/// is skipped and the scale backs off; after `growth_interval` consecutive
/// good steps the scale doubles again.
///
/// Master weights stay float64 throughout: the optimizers update `real`
/// (double) parameter storage, and `SGNN_COMPUTE_DTYPE=float32` only rounds
/// kernel operands (see docs/kernels.md), so no separate master copy is
/// needed.
class LossScaler {
 public:
  struct Options {
    bool enabled = false;
    double init_scale = 65536.0;  ///< 2^16, the usual AMP starting point
    double growth_factor = 2.0;
    double backoff_factor = 0.5;
    /// Consecutive overflow-free steps before the scale grows.
    std::int64_t growth_interval = 2000;
    /// Floor under repeated backoff; also the fixed scale when dynamic
    /// adjustment is pointless (growth_factor == 1).
    double min_scale = 1.0;
  };

  explicit LossScaler(const Options& options);

  bool enabled() const { return options_.enabled; }
  double scale() const { return scale_; }
  std::int64_t skipped_steps() const { return skipped_steps_; }
  std::int64_t good_steps() const { return good_steps_; }

  /// True when any defined parameter gradient holds a non-finite value.
  static bool grads_overflowed(const std::vector<Tensor>& parameters);

  /// Divides every defined gradient by the current scale, in place. Call
  /// only on overflow-free steps, before clipping / the optimizer step.
  void unscale(const std::vector<Tensor>& parameters) const;

  /// Records one step's outcome and adjusts the scale: backoff (clamped to
  /// min_scale) when `overflowed`, growth after `growth_interval` clean
  /// steps otherwise. Returns true when the step should be applied.
  bool update(bool overflowed);

 private:
  Options options_;
  double scale_ = 1.0;
  std::int64_t good_steps_ = 0;
  std::int64_t skipped_steps_ = 0;
};

}  // namespace sgnn
