#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sgnn/ckpt/checkpoint.hpp"
#include "sgnn/comm/communicator.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/store/ddstore.hpp"
#include "sgnn/train/bucketer.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/train/optim.hpp"
#include "sgnn/train/schedule.hpp"

namespace sgnn {

namespace obs {
class TelemetrySink;
}  // namespace obs

/// How gradients are synchronized and optimizer state is placed.
enum class DistStrategy {
  kDDP,    ///< all-reduce gradients, replicated Adam state
  kZeRO1,  ///< reduce-scatter + sharded Adam + all-gather (DeepSpeed ZeRO-1)
};

const char* dist_strategy_name(DistStrategy strategy);

/// Options for a simulated multi-GPU training run.
struct DistTrainOptions {
  int num_ranks = 4;  ///< the paper's four A100s per node
  DistStrategy strategy = DistStrategy::kDDP;
  bool activation_checkpointing = false;
  /// Graph parallelism (sgnn::gpar): instead of replicating every graph,
  /// the ranks COOPERATE on one shared global batch per step — each owns a
  /// contiguous spatial slab of the batch (GraphPartition) and exchanges
  /// one-hop halo rows through a HaloExchanger before each EGNN layer, with
  /// the exchange overlapped against the distance/RBF compute window.
  /// Gradients replicate exactly (ghost rows per edge in global edge order,
  /// parameter gradients by fold continuation), so every rank's update —
  /// and therefore the whole run — is BIT-IDENTICAL to the single-rank
  /// unpartitioned run (the partition-parity test wall enforces this).
  /// In this mode per_rank_batch_size is reinterpreted as the GLOBAL batch
  /// size (all ranks fetch the same samples), optimizer state is plain
  /// per-rank Adam (no all-reduce; see docs/graph-parallelism.md for why
  /// DDP averaging would break bit-identity), and the run requires kDDP
  /// strategy, float64 compute, and max_grad_norm == 0.
  bool graph_parallel = false;
  std::int64_t epochs = 2;
  std::int64_t per_rank_batch_size = 4;
  Adam::Options adam;
  LossWeights loss_weights;
  std::uint64_t sampler_seed = 17;
  /// Step-based LR schedule; overrides adam.learning_rate when set (parity
  /// with TrainOptions::schedule — both trainers honor the same schedules).
  std::optional<LrSchedule> schedule;
  /// Joint L2 clip applied to the rank-AVERAGED gradient; 0 disables.
  /// Clipping after averaging keeps replicas bit-identical (per-replica
  /// clipping before the all-reduce would break the sync invariant).
  double max_grad_norm = 0.0;
  /// Gradient-bucket cap for the overlapped communication path (DDP
  /// bucketed all-reduce / ZeRO bucketed reduce-scatter + all-gather),
  /// posted during backward via the autograd leaf-grad hook. Default is
  /// DDP's 25 MB; 0 disables bucketing and restores the sequential
  /// blocking collectives. Both settings train byte-identically — see
  /// docs/communication.md.
  std::size_t bucket_bytes = GradBucketer::kDefaultBucketBytes;
  /// Crash-safe training-state snapshots, written by rank 0 between two
  /// barriers (see docs/fault-tolerance.md).
  ckpt::CheckpointOptions checkpoint;
  /// Per-step telemetry receiver (not owned); every rank thread emits one
  /// StepTelemetry per step, so the sink must be thread-safe. All steps also
  /// feed the global obs::MetricsRegistry regardless of this field.
  obs::TelemetrySink* telemetry = nullptr;
};

/// Outcome of a distributed run: learning progress plus the cost accounting
/// that Tab. II and Fig. 6 are built from.
struct DistTrainReport {
  double final_train_loss = 0;
  /// Wall-clock of the compute portion (max across ranks, measured).
  double compute_seconds = 0;
  /// Interconnect time implied by the collective traffic (modeled).
  double comm_seconds = 0;
  /// Split of comm_seconds into the part hidden behind backward/optimizer
  /// compute and the part a rank would stall on (rank 0's accounting,
  /// summed over steps; exposed + overlapped == comm_seconds). With
  /// bucketing disabled everything is exposed.
  double comm_exposed_seconds = 0;
  double comm_overlapped_seconds = 0;
  /// Non-blocking bucket collectives posted across the run.
  std::int64_t comm_buckets = 0;
  /// Graph-parallel halo accounting (zero outside graph_parallel runs):
  /// payload bytes the halo exchanges moved, how many logical halo
  /// collectives ran, and the split of their modeled fabric time into the
  /// part a rank stalls on vs. the part hidden behind the distance/RBF
  /// compute window (rank 0's accounting, summed over steps).
  std::uint64_t halo_bytes = 0;
  std::int64_t halo_exchanges = 0;
  double halo_exposed_seconds = 0;
  double halo_overlapped_seconds = 0;
  /// DDStore data-loading traffic implied time is negligible and reported
  /// as raw bytes instead.
  Communicator::Traffic collective_traffic;
  DDStore::TrafficStats data_traffic;
  /// Global peak memory during the run and its phase attribution.
  MemBreakdown peak_memory;
  TrainPhase peak_phase = TrainPhase::kIdle;
  /// Highest total usage while each phase was active (Fig. 6(a)'s
  /// three-stage profile).
  std::int64_t peak_forward = 0;
  std::int64_t peak_backward = 0;
  std::int64_t peak_optimizer = 0;
  std::int64_t steps = 0;

  /// All-exposed accounting: every modeled comm second serializes after
  /// compute (the pre-overlap upper bound).
  double total_seconds() const { return compute_seconds + comm_seconds; }
  /// Overlap-honest accounting: only the exposed comm stalls the step.
  double overlapped_total_seconds() const {
    return compute_seconds + comm_exposed_seconds;
  }
};

/// Simulated data-parallel training across `num_ranks` replicas, one thread
/// per rank, samples served from a DDStore shard layout. Replicas are
/// verified to remain bit-identical after every epoch (the invariant DDP
/// and ZeRO both guarantee).
class DistributedTrainer {
 public:
  DistributedTrainer(const ModelConfig& config,
                     const DistTrainOptions& options);

  /// Trains on the graphs in `store`; returns the cost/learning report.
  /// When options.checkpoint.resume_from names a readable snapshot,
  /// training resumes from it bit-identically (same parameters as an
  /// uninterrupted run). A configured crash_after_step makes every rank
  /// throw ckpt::SimulatedCrash once that step completes.
  DistTrainReport train(const DDStore& store);

  /// Read-only access to replica 0 (e.g. for evaluation after training).
  const EGNNModel& model() const { return *replicas_.front(); }

  /// Max absolute parameter difference across replicas (0 when in sync).
  double replica_divergence() const;

 private:
  DistTrainOptions options_;
  std::vector<std::unique_ptr<EGNNModel>> replicas_;
  InterconnectModel interconnect_;
};

}  // namespace sgnn
