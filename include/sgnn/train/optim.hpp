#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sgnn/tensor/tensor.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

/// Gradient-descent optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients. Parameters whose
  /// gradient is undefined are skipped (treated as zero gradient).
  virtual void step() = 0;

  void zero_grad();
  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Tensor>& parameters() { return parameters_; }
  double learning_rate_ = 1e-3;

 private:
  std::vector<Tensor> parameters_;
};

/// Plain SGD with optional momentum — the baseline optimizer.
class SGD : public Optimizer {
 public:
  SGD(std::vector<Tensor> parameters, double learning_rate,
      double momentum = 0.0);

  void step() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;  ///< kOptimizerState, lazily allocated
};

/// Adam (Kingma & Ba). The two moment vectors are the "optimizer states"
/// of Fig. 6 — storage equal to twice the model weights, allocated under
/// MemCategory::kOptimizerState so the memory benches see exactly the 2x
/// footprint the paper describes.
class Adam : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  Adam(std::vector<Tensor> parameters, const Options& options);

  void step() override;

  /// Shared by ZeroAdam: one Adam update on a flat array slice.
  static void update_flat(real* param, const real* grad, real* m, real* v,
                          std::size_t count, std::int64_t timestep,
                          const Options& options);

  /// Optimizer-state access for training checkpoints (sgnn::ckpt): the
  /// bias-correction step count and the two moment vectors, shaped like the
  /// parameters. Restoring all three (plus the learning rate) resumes the
  /// update sequence bit-identically.
  std::int64_t timestep() const { return timestep_; }
  void set_timestep(std::int64_t timestep) {
    SGNN_CHECK(timestep >= 0, "Adam timestep must be non-negative");
    timestep_ = timestep;
  }
  std::vector<Tensor>& moment1() { return m_; }
  std::vector<Tensor>& moment2() { return v_; }

 private:
  Options options_;
  std::int64_t timestep_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace sgnn
