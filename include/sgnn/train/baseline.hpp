#pragma once

#include <array>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/graph.hpp"

namespace sgnn {

/// Per-species reference-energy baseline, the standard preprocessing step
/// of machine-learned interatomic potentials (and of HydraGNN's pipeline):
/// total energies are dominated by composition (sum of isolated-atom
/// energies), so we fit E ~ sum_z n_z * e0_z by least squares on the
/// training set and train the GNN on the residual. Without this the model
/// spends its whole budget learning additive constants.
class EnergyBaseline {
 public:
  /// Identity baseline (all zeros).
  EnergyBaseline() { e0_.fill(0.0); }

  /// Least-squares fit of per-species energies on the given graphs
  /// (ridge-regularized normal equations; species never seen get 0).
  static EnergyBaseline fit(const std::vector<const MolecularGraph*>& graphs);

  /// Composition energy sum_i e0_{z_i} for one species list.
  double offset(const std::vector<int>& species) const;

  /// Subtracts each graph's composition energy from batch.energy in place.
  void subtract_from(GraphBatch& batch) const;

  double species_energy(int atomic_number) const {
    return e0_[static_cast<std::size_t>(atomic_number)];
  }

 private:
  std::array<double, elements::kMaxAtomicNumber> e0_{};
};

}  // namespace sgnn
