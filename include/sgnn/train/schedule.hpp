#pragma once

#include <cstdint>
#include <vector>

#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// Step-based learning-rate schedules — the LLM-style training recipes the
/// paper's infrastructure section imports (warmup + decay). Pure functions
/// of the step index, so distributed replicas stay in lockstep for free.
class LrSchedule {
 public:
  /// lr(step) = lr.
  static LrSchedule constant(double learning_rate);

  /// lr decays by `decay` every `steps_per_epoch` steps.
  static LrSchedule exponential(double learning_rate, double decay,
                                std::int64_t steps_per_epoch);

  /// Linear warmup to `peak` over `warmup_steps`, then cosine decay to
  /// `final_fraction * peak` at `total_steps` (clamped thereafter).
  static LrSchedule warmup_cosine(double peak, std::int64_t warmup_steps,
                                  std::int64_t total_steps,
                                  double final_fraction = 0.1);

  double at_step(std::int64_t step) const;

 private:
  enum class Kind { kConstant, kExponential, kWarmupCosine };
  Kind kind_ = Kind::kConstant;
  double base_ = 1e-3;
  double decay_ = 1.0;
  double final_fraction_ = 0.1;
  std::int64_t warmup_steps_ = 0;
  std::int64_t total_steps_ = 1;
  std::int64_t steps_per_epoch_ = 1;
};

/// Joint L2 norm of all defined gradients (undefined gradients count as
/// zero). Shared by clipping and the per-step telemetry.
double grad_l2_norm(const std::vector<Tensor>& parameters);

/// Rescales all gradients so their joint L2 norm does not exceed
/// `max_norm`; returns the pre-clip norm. Parameters without gradients are
/// ignored. The standard stabilizer for large-model training.
double clip_grad_norm(const std::vector<Tensor>& parameters, double max_norm);

}  // namespace sgnn
