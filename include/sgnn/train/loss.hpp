#pragma once

#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/tensor/tensor.hpp"

namespace sgnn {

/// Relative weights of the HydraGNN prediction tasks.
struct LossWeights {
  double energy = 1.0;
  double force = 25.0;   ///< forces are per-component and much smaller
  double dipole = 1.0;   ///< only applied when the model predicts dipoles
};

/// Differentiable loss plus detached per-task values for logging.
struct LossTerms {
  Tensor total;            ///< scalar, autograd-connected
  double energy_mse = 0;   ///< per-atom-normalized energy MSE
  double force_mse = 0;    ///< per-component force MSE
  double dipole_mse = 0;   ///< 0 unless the dipole head is active
};

/// HydraGNN-style multi-task objective:
///   L = w_E * MSE( E_pred/N_atoms, E_true/N_atoms ) + w_F * MSE(F_pred, F_true)
/// Energies are normalized per atom so graphs of different sizes contribute
/// comparably (total energy is extensive; without this, OC slabs with ~80
/// atoms would dominate the molecular sources).
LossTerms multitask_loss(const Tensor& predicted_energy,
                         const Tensor& predicted_forces,
                         const GraphBatch& batch, const LossWeights& weights);

/// Dispatch on the model output: adds the dipole term when the model
/// produced a dipole prediction.
LossTerms multitask_loss(const EGNNModel::Output& prediction,
                         const GraphBatch& batch, const LossWeights& weights);

/// Evaluation metrics on one batch (no autograd).
struct EvalMetrics {
  double loss = 0;             ///< same composite objective
  double energy_mae_per_atom = 0;
  double force_mae = 0;
  double dipole_mae = 0;       ///< 0 unless the dipole head is active
  std::int64_t num_graphs = 0;
  std::int64_t num_nodes = 0;
};

EvalMetrics evaluate_batch(const EGNNModel& model, const GraphBatch& batch,
                           const LossWeights& weights);

/// Accumulates batch metrics into dataset-level averages.
struct MetricAccumulator {
  double loss_sum = 0;
  double energy_mae_sum = 0;  ///< weighted by graphs
  double dipole_mae_sum = 0;  ///< weighted by graphs
  double force_mae_sum = 0;   ///< weighted by nodes
  std::int64_t graphs = 0;
  std::int64_t nodes = 0;
  std::int64_t batches = 0;

  void add(const EvalMetrics& m);
  EvalMetrics mean() const;
};

}  // namespace sgnn
