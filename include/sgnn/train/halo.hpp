#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sgnn/comm/communicator.hpp"
#include "sgnn/graph/partition.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/tensor/grad_reducer.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn::gpar {

/// One rank's halo-exchange engine for a graph-parallel training step: the
/// GraphParallelHook the EGNN forward sources ghost rows through, and the
/// ShardedGradReducer its backward folds replicated parameter gradients
/// with. One instance per rank per step; it must outlive the step's
/// backward pass (its buffers belong to in-flight collectives).
///
/// Every exchange is built from Communicator::iall_gather_counts with
/// globally identical counts, so the SPMD post sequence is symmetric by
/// construction — no rank ever branches a collective on its own row counts
/// (the classic graph-parallel deadlock; see docs/graph-parallelism.md).
///
/// Bit-identity contract (the partition-parity test wall enforces it):
/// * forward ghost rows are byte copies of the owner's rows;
/// * the ghost-gradient reduction folds per-edge gradient rows into each
///   owner row in GLOBAL edge order (rank-ascending blocks, slice order
///   within a block) — the exact order the unpartitioned scatter uses;
/// * parameter gradients are fold continuations rank to rank (never
///   partial-sum reductions, which would re-bracket the floating sums).
class HaloExchanger final : public GraphParallelHook,
                            public ShardedGradReducer {
 public:
  /// Slices rank `rank`'s shard out of `batch` under `partition`. Both
  /// references (plus the communicator) must outlive the exchanger.
  HaloExchanger(Communicator& comm, int rank, const GraphPartition& partition,
                const GraphBatch& batch);
  /// Waits any still-pending exchange so the progress engine never touches
  /// freed buffers — what makes a simulated crash INSIDE the halo window
  /// (ckpt fault injection) unwind safely.
  ~HaloExchanger() override;
  HaloExchanger(const HaloExchanger&) = delete;
  HaloExchanger& operator=(const HaloExchanger&) = delete;

  // -- GraphParallelHook ----------------------------------------------------
  std::int64_t num_owned() const override { return mine_.num_owned(); }
  const std::vector<int>& owned_species() const override { return species_; }
  const Tensor& owned_positions() const override { return positions_; }
  const EGNNLayer::EdgeContext& edge_context() const override {
    return context_;
  }
  Tensor select_src_x(const Tensor& x, const Tensor& h) override;
  Tensor select_src_h(const Tensor& h) override;
  Tensor all_gather_rows(const Tensor& owned) override;
  ShardedGradReducer* reducer() override { return this; }

  // -- ShardedGradReducer ---------------------------------------------------
  Tensor matmul_weight_grad(const Tensor& a, const Tensor& grad) override;
  Tensor rows_sum_grad(const Tensor& grad) override;
  Tensor scatter_rows_grad(const Tensor& grad,
                           const std::vector<std::int64_t>& index,
                           std::int64_t rows, std::int64_t cols) override;

  // -- Instrumentation ------------------------------------------------------
  /// Fault-injection hook, fired after the boundary gathers are posted and
  /// before the first wait — inside the halo-exchange window.
  void set_pre_wait_hook(std::function<void()> hook) {
    pre_wait_hook_ = std::move(hook);
  }
  /// Payload bytes moved by halo exchanges so far (boundary gathers, ghost
  /// gradients, readout replication, ring folds; counted per logical op).
  std::uint64_t halo_bytes() const { return halo_bytes_; }
  /// Logical halo collectives posted so far.
  std::int64_t exchanges() const { return exchanges_; }
  /// Post/wait-stamped events for InterconnectModel::overlap_cost — how
  /// much of the halo traffic the RBF compute window actually hid. Clears
  /// the internal list.
  std::vector<InterconnectModel::OverlapEvent> take_events();

 private:
  /// A posted boundary gather whose wait is deferred (the overlap window).
  struct PendingGather {
    std::vector<real> piece;     ///< this rank's boundary rows, packed
    std::vector<real> gathered;  ///< rank-order concat of all boundaries
    CollectiveHandle handle;
    std::uint64_t bytes = 0;
    double post_seconds = 0;
    bool posted = false;  ///< false when the global boundary is empty
    bool open = false;    ///< true between post and wait
  };

  /// Packs this rank's boundary rows of `rows` and posts the gather.
  void post_boundary_gather(const real* rows, std::int64_t cols,
                            PendingGather& pending);
  /// Waits `pending` and records its overlap event.
  void wait_gather(PendingGather& pending);
  /// Builds the (E_local, cols) src-side gather of `owned` (detached
  /// values) + the waited ghost rows, with the ghost-gradient backward.
  Tensor make_src_select(const Tensor& owned, const std::vector<real>& ghost,
                         std::int64_t cols);
  /// Backward of make_src_select: exchanges ghost per-edge gradient rows
  /// and folds them into owner rows in global edge order.
  Tensor ghost_scatter_grad(const Tensor& grad, std::int64_t cols);
  /// Rank-to-rank fold continuation: `fold_own` adds this rank's rows into
  /// the carried partial (exact single-rank bracketing); the result of the
  /// last rank is replicated everywhere.
  Tensor ring_fold(std::int64_t rows, std::int64_t cols,
                   const std::function<void(real*)>& fold_own);
  void record_event(CollectiveKind kind, std::uint64_t bytes, double post,
                    double wait);
  /// Adds to the halo byte/exchange counters and obs metrics — once per
  /// LOGICAL collective, so only rank 0 of each op accounts it.
  void count_exchange(std::uint64_t bytes);

  Communicator& comm_;
  const int me_;
  const GraphPartition& part_;
  const RankPartition& mine_;

  std::vector<int> species_;  ///< owned species, global order
  Tensor positions_;          ///< (n_own, 3) owned positions
  EGNNLayer::EdgeContext context_;

  PendingGather pending_x_;
  PendingGather pending_h_;

  WallTimer clock_;  ///< step-relative stamps for overlap events
  std::vector<InterconnectModel::OverlapEvent> events_;
  std::uint64_t halo_bytes_ = 0;
  std::int64_t exchanges_ = 0;
  std::function<void()> pre_wait_hook_;
};

}  // namespace sgnn::gpar
