#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace sgnn {

/// Process-global worker pool backing `parallel_for`. Sized once, lazily, on
/// first use: `SGNN_NUM_THREADS` when set (>= 1), otherwise
/// `std::thread::hardware_concurrency()`. Size 1 means no worker threads are
/// spawned and every `parallel_for` runs inline.
///
/// The pool coexists with `sgnn::comm` rank threads: several ranks may issue
/// `parallel_for` calls concurrently. Each call enqueues one task, the caller
/// itself claims chunks alongside the workers (so a call never deadlocks even
/// when every worker is busy with another rank's task), and the call returns
/// only after all of its own chunks completed. A `parallel_for` issued from
/// inside a pool worker runs inline rather than re-entering the pool.
///
/// Determinism contract: the chunk decomposition of [begin, end) depends only
/// on `begin`, `end`, and `grain` — never on the pool size or on scheduling.
/// Chunk i covers [begin + i*grain, min(begin + (i+1)*grain, end)), and the
/// inline fast path visits the same chunks in index order. Kernels that write
/// disjoint outputs per chunk are therefore bit-identical across thread
/// counts; kernels that reduce across chunks must combine per-chunk partials
/// in chunk order (see `parallel_reduce_sum`) to keep that property.
class ThreadPool {
 public:
  /// The shared pool. First call initializes it (and publishes the size as
  /// the `threadpool.size` obs gauge).
  static ThreadPool& instance();

  /// Total lanes (caller + workers); >= 1.
  int size() const { return size_; }

  /// Splits [begin, end) into grain-sized chunks and invokes
  /// `fn(chunk_begin, chunk_end)` for each, returning once all chunks ran.
  /// Runs inline when the range fits one chunk, the pool has a single lane,
  /// or the caller is itself a pool worker.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Re-sizes the pool, joining and respawning workers. Test/bench hook
  /// only: must not race with in-flight `parallel_for` calls.
  void resize(int num_threads);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();

  struct Impl;
  /// Worker/queue state; opaque to keep <thread> out of this header. The
  /// destructor lives in the .cpp, where Impl is complete.
  std::unique_ptr<Impl> impl_;
  int size_ = 1;

  void spawn_workers(int count);
  void join_workers();
};

/// Number of chunks `parallel_for` uses for [begin, end) at `grain`.
inline std::int64_t parallel_chunk_count(std::int64_t begin, std::int64_t end,
                                         std::int64_t grain) {
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

/// Convenience wrapper over the shared pool.
inline void parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

/// Minimum per-chunk work (in inner-loop iterations, roughly flops) below
/// which fan-out costs more than it saves; ranges smaller than one grain run
/// inline with zero synchronization.
inline constexpr std::int64_t kParallelMinWork = 1 << 15;

/// Grain (in items) so one chunk carries at least kParallelMinWork inner
/// iterations, given `work_per_item` iterations per item. Depends only on
/// the workload shape, so chunking — and thus numerics — is independent of
/// the pool size.
inline std::int64_t parallel_grain(std::int64_t work_per_item) {
  if (work_per_item < 1) work_per_item = 1;
  const std::int64_t grain = kParallelMinWork / work_per_item;
  return grain < 1 ? 1 : grain;
}

/// Order-deterministic parallel sum: `map(chunk_begin, chunk_end)` produces
/// one partial per chunk and the partials are combined in chunk order, so
/// the result is bit-identical for every thread count (including the inline
/// path, which computes the same partials sequentially).
template <typename MapFn>
double parallel_reduce_sum(std::int64_t begin, std::int64_t end,
                           std::int64_t grain, MapFn map) {
  const std::int64_t nchunks = parallel_chunk_count(begin, end, grain);
  if (nchunks == 0) return 0.0;
  if (nchunks == 1) return map(begin, end);
  std::vector<double> partials(static_cast<std::size_t>(nchunks));
  parallel_for(begin, end, grain,
               [&](std::int64_t chunk_begin, std::int64_t chunk_end) {
                 const auto chunk = (chunk_begin - begin) / grain;
                 partials[static_cast<std::size_t>(chunk)] =
                     map(chunk_begin, chunk_end);
               });
  double total = 0;
  for (const double p : partials) total += p;
  return total;
}

}  // namespace sgnn
