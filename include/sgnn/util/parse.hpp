#pragma once

// Locale-independent floating-point parsing and formatting. std::strtod and
// plain ostream formatting honor the process locale: under e.g. de_DE a
// telemetry line "loss":0.5 would parse as 0 (comma decimal separator) and
// doubles would print as "0,5", silently corrupting every JSON artifact.
// All numeric text the repo reads or writes goes through these helpers.

#include <charconv>
#include <cstddef>
#include <iomanip>
#include <locale>
#include <sstream>
#include <string>

namespace sgnn::util {

/// Parses a double from the character range [first, last) using the classic
/// ("C") locale regardless of the process locale. On success returns true
/// and sets `consumed` (when non-null) to the number of characters used; on
/// failure returns false and leaves `out` untouched.
inline bool parse_double(const char* first, const char* last, double& out,
                         std::size_t* consumed = nullptr) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  double value = 0;
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc{} || result.ptr == first) return false;
  out = value;
  if (consumed != nullptr) {
    *consumed = static_cast<std::size_t>(result.ptr - first);
  }
  return true;
#else
  // Fallback for standard libraries without FP from_chars: an istringstream
  // pinned to the classic locale.
  std::istringstream is(std::string(first, last));
  is.imbue(std::locale::classic());
  double value = 0;
  is >> value;
  if (is.fail()) return false;
  out = value;
  if (consumed != nullptr) {
    *consumed = is.eof() ? static_cast<std::size_t>(last - first)
                         : static_cast<std::size_t>(is.tellg());
  }
  return true;
#endif
}

/// Null-terminated-string convenience overload.
inline bool parse_double(const char* str, double& out,
                         std::size_t* consumed = nullptr) {
  return parse_double(str, str + std::char_traits<char>::length(str), out,
                      consumed);
}

inline bool parse_double(const std::string& str, double& out,
                         std::size_t* consumed = nullptr) {
  return parse_double(str.data(), str.data() + str.size(), out, consumed);
}

/// Formats a double with enough digits to round-trip (classic locale, so
/// the decimal separator is always '.').
inline std::string format_double(double value, int precision = 17) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace sgnn::util
