#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sgnn {

/// Exception type thrown by all sgnn components on precondition or
/// invariant violations. Carries the failing expression and location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "sgnn check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace sgnn

/// Runtime-checked precondition. Always active (these guard API misuse, not
/// hot inner loops; hot loops use SGNN_DCHECK which compiles out in NDEBUG).
#define SGNN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream sgnn_check_os_;                                   \
      sgnn_check_os_ << msg; /* NOLINT */                                  \
      ::sgnn::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                          sgnn_check_os_.str());           \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
// The dead `if (false)` branch keeps `cond` and `msg` odr-used (and their
// names spell-checked by the compiler) even when the check compiles out.
#define SGNN_DCHECK(cond, msg)     \
  do {                             \
    if (false) {                   \
      SGNN_CHECK(cond, msg);       \
    }                              \
  } while (false)
#else
#define SGNN_DCHECK(cond, msg) SGNN_CHECK(cond, msg)
#endif
