#pragma once

#include <string>
#include <vector>

namespace sgnn {

/// ASCII table builder used by the bench binaries to print paper-style
/// tables and figure series. Also exports CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Renders a boxed, column-aligned ASCII table.
  std::string to_ascii(const std::string& title = "") const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas; callers keep
  /// cells comma-free).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Raw cell access for structured (JSON) exports.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& cells() const { return rows_; }

  /// Numeric formatting helpers shared by benches.
  static std::string fixed(double value, int precision);
  static std::string scientific(double value, int precision);
  /// Human-readable byte count (e.g. "726 GB", "1.2 TB").
  static std::string human_bytes(double bytes);
  /// Human-readable count (e.g. "20.9 M", "1.5 B").
  static std::string human_count(double count);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgnn
