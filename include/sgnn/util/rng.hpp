#pragma once

#include <cmath>
#include <cstdint>

#include "sgnn/util/error.hpp"

namespace sgnn {

/// Deterministic, splittable pseudo-random generator (xoshiro256**,
/// seeded via splitmix64). Every stochastic component in sgnn draws from an
/// explicitly passed Rng so that experiments are reproducible bit-for-bit
/// across runs regardless of evaluation order.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Derive an independent stream; used to hand each dataset source, rank,
  /// or layer its own generator without coupling their sequences.
  Rng split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

  /// Complete generator state, for training-state checkpoints: restoring a
  /// saved State resumes the exact sequence (including the cached Box-Muller
  /// value). Trivially copyable so snapshots can store it byte-for-byte.
  struct State {
    std::uint64_t s[4] = {};
    double cached = 0.0;
    std::uint8_t has_cached = 0;
  };

  State state() const {
    State snapshot;
    for (int i = 0; i < 4; ++i) snapshot.s[i] = state_[i];
    snapshot.cached = cached_;
    snapshot.has_cached = has_cached_ ? 1 : 0;
    return snapshot;
  }

  void set_state(const State& snapshot) {
    for (int i = 0; i < 4; ++i) state_[i] = snapshot.s[i];
    cached_ = snapshot.cached;
    has_cached_ = snapshot.has_cached != 0;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    SGNN_CHECK(n > 0, "uniform_index requires n > 0");
    // Lemire-style rejection-free multiply-shift is fine here; modulo bias is
    // negligible for n << 2^64 but we reject to keep determinism exact.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace sgnn
