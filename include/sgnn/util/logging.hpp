#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace sgnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger writing to stderr. Benches and examples
/// use kInfo; tests default to kWarn to keep ctest output readable.
class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& message) {
    if (level < level_) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    std::cerr << "[" << name(level) << "] " << message << '\n';
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info ";
      case LogLevel::kWarn: return "warn ";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
};

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().write(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace sgnn

#define SGNN_LOG_DEBUG ::sgnn::detail::LogMessage(::sgnn::LogLevel::kDebug)
#define SGNN_LOG_INFO ::sgnn::detail::LogMessage(::sgnn::LogLevel::kInfo)
#define SGNN_LOG_WARN ::sgnn::detail::LogMessage(::sgnn::LogLevel::kWarn)
#define SGNN_LOG_ERROR ::sgnn::detail::LogMessage(::sgnn::LogLevel::kError)
