#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace sgnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal thread-safe leveled logger writing to stderr. Benches and examples
/// use kInfo; tests default to kWarn to keep ctest output readable.
///
/// Lines carry an ISO-8601 UTC timestamp and, when the calling thread has a
/// rank tag (set by the distributed trainer via set_thread_rank or
/// obs::ScopedTraceRank), a "[rank N]" prefix. The initial level comes from
/// the SGNN_LOG_LEVEL environment variable (debug|info|warn|error|off), read
/// once at startup; set_level still overrides at runtime.
class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void set_timestamps(bool enabled) { timestamps_ = enabled; }

  /// Per-thread rank prefix; -1 (the default) means no prefix.
  static void set_thread_rank(int rank) { thread_rank_slot() = rank; }
  static int thread_rank() { return thread_rank_slot(); }

  /// Parses a level name; returns `fallback` for unknown/empty input.
  static LogLevel parse_level(const std::string& name, LogLevel fallback) {
    if (name == "debug") return LogLevel::kDebug;
    if (name == "info") return LogLevel::kInfo;
    if (name == "warn" || name == "warning") return LogLevel::kWarn;
    if (name == "error") return LogLevel::kError;
    if (name == "off" || name == "none") return LogLevel::kOff;
    return fallback;
  }

  /// The full line write() emits, exposed for tests.
  std::string format(LogLevel level, const std::string& message) const {
    std::ostringstream os;
    if (timestamps_) os << iso8601_now() << ' ';
    os << "[" << name(level) << "]";
    const int rank = thread_rank();
    if (rank >= 0) os << " [rank " << rank << "]";
    os << ' ' << message;
    return os.str();
  }

  void write(LogLevel level, const std::string& message) {
    if (level < level_) return;
    const std::string line = format(level, message);
    const std::lock_guard<std::mutex> lock(mutex_);
    std::cerr << line << '\n';
  }

  /// Current UTC wall-clock as e.g. "2026-08-06T12:34:56.789Z".
  static std::string iso8601_now() {
    using std::chrono::duration_cast;
    using std::chrono::milliseconds;
    const auto now = std::chrono::system_clock::now();
    const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
    const auto millis =
        duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
    std::tm utc{};
    gmtime_r(&seconds, &utc);
    char buf[40];
    const std::size_t len = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &utc);
    std::snprintf(buf + len, sizeof buf - len, ".%03dZ",
                  static_cast<int>(millis));
    return buf;
  }

 private:
  Logger() {
    if (const char* env = std::getenv("SGNN_LOG_LEVEL")) {
      level_ = parse_level(env, level_);
    }
  }

  static int& thread_rank_slot() {
    thread_local int rank = -1;
    return rank;
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info ";
      case LogLevel::kWarn: return "warn ";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kInfo;
  bool timestamps_ = true;
  std::mutex mutex_;
};

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().write(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace sgnn

#define SGNN_LOG_DEBUG ::sgnn::detail::LogMessage(::sgnn::LogLevel::kDebug)
#define SGNN_LOG_INFO ::sgnn::detail::LogMessage(::sgnn::LogLevel::kInfo)
#define SGNN_LOG_WARN ::sgnn::detail::LogMessage(::sgnn::LogLevel::kWarn)
#define SGNN_LOG_ERROR ::sgnn::detail::LogMessage(::sgnn::LogLevel::kError)
